#!/usr/bin/env sh
# Tier-1 verification: fresh configure, full build, full test suite.
# Run from anywhere; builds into <repo>/build.
#
# A second, sanitizer lane (ASan + UBSan, build-san/) then re-runs the
# transport-heavy suites — fault injection exercises timer/ack races that
# only a sanitizer can vouch for. Skip it with PX_SKIP_SAN=1.
#
# --torture: instead of the tiers above, build and run only the
# ctest-labeled torture suites (px::torture seed sweeps) with a big seed
# budget — 64 seeds per property unless PX_TORTURE_SEEDS overrides it.
#
# --resilience: build and run only the ctest-labeled resilience suites
# (locality kill/restart, failure detector, checkpoint/rollback recovery)
# with a 16-seed sweep per property unless PX_TORTURE_SEEDS overrides it.
#
# --agas: build and run only the ctest-labeled agas suites (migration edge
# cases, rebalancer planner/solver/cluster-model, and the 16-seed
# migration torture sweep; test_torture_migration carries both labels) with
# a 16-seed budget unless PX_TORTURE_SEEDS overrides it.
#
# --partition: build and run only the ctest-labeled partition suites
# (fault-plane partition schedules, quorum membership + split-brain
# fencing, gray-failure indirect probing, and the split-brain torture
# sweep; test_torture_partition carries both labels) with a 16-seed
# budget unless PX_TORTURE_SEEDS overrides it.
#
# --simd: build and run only the ctest-labeled simd suites (pack library,
# VNS layout + padded segments, field2d, the 2D Jacobi ABI-preset kernels,
# and the blocked 3D kernel's seed sweep) with a 16-seed budget unless
# PX_TORTURE_SEEDS overrides it.
#
# --serve: build and run the ctest-labeled serve suites (scheduling-policy
# conformance + px::serve multi-tenant isolation, including the co-tenant
# fail-stop sweep) with a 16-seed budget unless PX_TORTURE_SEEDS overrides
# it, then gate the default ws_policy against the committed PR 5 baseline:
# the policy-interface extraction must keep the spawn/yield/steal hot
# paths within threshold of BENCH_pr5.json (75% smoke threshold unless
# PX_BENCH_THRESHOLD overrides it — same noise rationale as --bench).
#
# --bench: smoke-run the px::bench regression suite (scripts/bench.sh
# --smoke) against the committed baseline BENCH_seed.json when present.
# Smoke timings on a shared CI host are noisy, so the lane only fails on
# gross regressions (threshold 75% unless PX_BENCH_THRESHOLD overrides
# it); the real gate is a full scripts/bench.sh run on a quiet machine.
# Counter-based gates are exempt from the noise carve-out: the suite
# binary exits 1 when parcel coalescing loses its >= 5x frames-on-wire
# reduction (net.many_small_parcels), which fails this lane regardless of
# timing thresholds.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if [ "${1:-}" = "--torture" ]; then
  cmake -B "$repo/build" -S "$repo"
  cmake --build "$repo/build" -j
  (cd "$repo/build" && \
   PX_TORTURE_SEEDS="${PX_TORTURE_SEEDS:-64}" \
   ctest -L torture --output-on-failure)
  exit 0
fi

if [ "${1:-}" = "--resilience" ]; then
  cmake -B "$repo/build" -S "$repo"
  cmake --build "$repo/build" -j
  (cd "$repo/build" && \
   PX_TORTURE_SEEDS="${PX_TORTURE_SEEDS:-16}" \
   ctest -L resilience --output-on-failure)
  exit 0
fi

if [ "${1:-}" = "--agas" ]; then
  cmake -B "$repo/build" -S "$repo"
  cmake --build "$repo/build" -j
  (cd "$repo/build" && \
   PX_TORTURE_SEEDS="${PX_TORTURE_SEEDS:-16}" \
   ctest -L agas --output-on-failure)
  exit 0
fi

if [ "${1:-}" = "--partition" ]; then
  cmake -B "$repo/build" -S "$repo"
  cmake --build "$repo/build" -j
  (cd "$repo/build" && \
   PX_TORTURE_SEEDS="${PX_TORTURE_SEEDS:-16}" \
   ctest -L partition --output-on-failure)
  exit 0
fi

if [ "${1:-}" = "--simd" ]; then
  cmake -B "$repo/build" -S "$repo"
  cmake --build "$repo/build" -j
  (cd "$repo/build" && \
   PX_TORTURE_SEEDS="${PX_TORTURE_SEEDS:-16}" \
   ctest -L simd --output-on-failure)
  exit 0
fi

if [ "${1:-}" = "--serve" ]; then
  cmake -B "$repo/build" -S "$repo"
  cmake --build "$repo/build" -j
  (cd "$repo/build" && \
   PX_TORTURE_SEEDS="${PX_TORTURE_SEEDS:-16}" \
   ctest -L serve --output-on-failure)
  "$repo/scripts/bench.sh" --smoke \
    --out "$repo/build/BENCH_serve_smoke.json" \
    --compare "$repo/BENCH_pr5.json" \
    --threshold "${PX_BENCH_THRESHOLD:-75}"
  exit 0
fi

if [ "${1:-}" = "--bench" ]; then
  baseline=""
  if [ -f "$repo/BENCH_seed.json" ]; then
    baseline="--compare $repo/BENCH_seed.json \
              --threshold ${PX_BENCH_THRESHOLD:-75}"
  fi
  # shellcheck disable=SC2086  # baseline is intentionally word-split
  "$repo/scripts/bench.sh" --smoke \
    --out "$repo/build/BENCH_smoke.json" $baseline
  exit 0
fi

cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j
(cd "$repo/build" && ctest --output-on-failure -j)

if [ "${PX_SKIP_SAN:-0}" = "1" ]; then
  echo "check.sh: PX_SKIP_SAN=1, skipping sanitizer lane"
  exit 0
fi

cmake -B "$repo/build-san" -S "$repo" \
  -DPX_SANITIZE=ON -DPX_BUILD_BENCH=OFF -DPX_BUILD_EXAMPLES=OFF
cmake --build "$repo/build-san" -j \
  --target test_fault_injection --target test_parcel
(cd "$repo/build-san" && ctest --output-on-failure \
  -R 'test_fault_injection|test_parcel')
