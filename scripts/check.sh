#!/usr/bin/env sh
# Tier-1 verification: fresh configure, full build, full test suite.
# Run from anywhere; builds into <repo>/build.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j
cd "$repo/build" && ctest --output-on-failure -j
