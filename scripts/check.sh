#!/usr/bin/env sh
# Tier-1 verification: fresh configure, full build, full test suite.
# Run from anywhere; builds into <repo>/build.
#
# A second, sanitizer lane (ASan + UBSan, build-san/) then re-runs the
# transport-heavy suites — fault injection exercises timer/ack races that
# only a sanitizer can vouch for. Skip it with PX_SKIP_SAN=1.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j
(cd "$repo/build" && ctest --output-on-failure -j)

if [ "${PX_SKIP_SAN:-0}" = "1" ]; then
  echo "check.sh: PX_SKIP_SAN=1, skipping sanitizer lane"
  exit 0
fi

cmake -B "$repo/build-san" -S "$repo" \
  -DPX_SANITIZE=ON -DPX_BUILD_BENCH=OFF -DPX_BUILD_EXAMPLES=OFF
cmake --build "$repo/build-san" -j \
  --target test_fault_injection --target test_parcel
(cd "$repo/build-san" && ctest --output-on-failure \
  -R 'test_fault_injection|test_parcel')
