#!/usr/bin/env sh
# px::bench driver: build and run the machine-readable regression suite
# (bench/px_bench_suite) pinned and warm, writing a px-bench/1 JSON report.
#
#   scripts/bench.sh                         # full run -> build/BENCH.json
#   scripts/bench.sh --out BENCH_pr5.json    # choose the report path
#   scripts/bench.sh --compare BENCH_seed.json --threshold 10
#   scripts/bench.sh --smoke                 # CI smoke lane (1/16 iters)
#
# Exit codes follow the suite binary: 0 pass, 1 regression beyond the
# threshold, 2 usage error / missing baseline / write failure. The suite
# also self-gates the net.many_small_parcels cases (parcel coalescing must
# keep a >= 5x frames-on-wire reduction) and exits 1 on a violation even
# without --compare, so the recording pass below fails the lane on a
# coalescing regression.
#
# Methodology: the binary itself does PX_BENCH_WARMUP untimed repetitions
# per case and reports median + MAD over PX_BENCH_REPS timed ones; this
# wrapper adds (a) a throwaway warm-up pass of the whole suite so code,
# allocator arenas and CPU clocks are warm before anything is recorded,
# and (b) CPU pinning via taskset when more than one CPU is available, so
# the worker threads don't migrate between repetitions.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

out="$repo/build/BENCH.json"
pass_through=""
smoke=0
while [ $# -gt 0 ]; do
  case "$1" in
    --out)
      [ $# -ge 2 ] || { echo "bench.sh: --out needs a path" >&2; exit 2; }
      out=$2; shift 2 ;;
    --compare|--threshold)
      [ $# -ge 2 ] || { echo "bench.sh: $1 needs a value" >&2; exit 2; }
      pass_through="$pass_through $1 $2"; shift 2 ;;
    --smoke)
      smoke=1; pass_through="$pass_through --smoke"; shift ;;
    *)
      echo "usage: bench.sh [--out FILE] [--compare BASELINE]" \
           "[--threshold PCT] [--smoke]" >&2
      exit 2 ;;
  esac
done

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j --target px_bench_suite >/dev/null

suite="$repo/build/bench/px_bench_suite"

# Pin to the first N CPUs when we have more than one; on a single-CPU
# host (or without taskset) just run as-is.
run=""
if command -v taskset >/dev/null 2>&1 && [ "$(nproc)" -gt 1 ]; then
  run="taskset -c 0-$(($(nproc) - 1))"
fi

if [ "$smoke" = 0 ]; then
  echo "bench.sh: warm-up pass (unrecorded)"
  PX_BENCH_REPS=1 PX_BENCH_WARMUP=0 $run "$suite" --smoke >/dev/null
fi

echo "bench.sh: recording pass -> $out"
# shellcheck disable=SC2086  # pass_through is intentionally word-split
$run "$suite" --out "$out" $pass_through
