#!/usr/bin/env sh
# Single CI entry point: chains every verification lane in cost order.
#
#   1. tier-1        fresh build + full ctest + sanitizer re-run of the
#                    transport suites            (scripts/check.sh)
#   2. resilience    kill/restart + checkpoint/rollback suites under a
#                    16-seed torture sweep       (scripts/check.sh --resilience)
#   3. agas          migration edge cases + rebalancer planner/solver/
#                    cluster-model suites under a
#                    16-seed torture sweep       (scripts/check.sh --agas)
#   4. partition     partition schedules + quorum membership/fencing +
#                    gray-failure probing suites under a
#                    16-seed torture sweep       (scripts/check.sh --partition)
#   5. simd          explicit-vectorization suites: VNS padded segments,
#                    seam orientation, ABI-preset kernels, blocked 3D
#                    seed sweep                  (scripts/check.sh --simd)
#   6. serve         scheduling-policy conformance + px::serve isolation
#                    sweeps, then the ws_policy vs BENCH_pr5.json
#                    regression gate             (scripts/check.sh --serve)
#   7. torture       all torture-labeled seed sweeps with a big budget
#                    (64 seeds per property)     (scripts/check.sh --torture)
#   8. bench         px::bench smoke run vs the committed BENCH_seed.json
#                    baseline, gross-regression threshold for timings, the
#                    in-binary coalescing, rebalance, and explicit-pack
#                    vs auto-vectorized gates exact
#                                                (scripts/check.sh --bench)
#
# Knobs pass straight through: PX_SKIP_SAN=1 skips the sanitizer lane,
# PX_TORTURE_SEEDS overrides both sweep budgets, PX_BENCH_THRESHOLD the
# bench lane's regression threshold. Any lane failing fails the run
# immediately (set -e); later lanes reuse the build tree the first lane
# produced, so the whole chain configures/builds once.
set -eu

scripts=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

echo "== ci.sh: lane 1/8 tier-1 (build + full suite + sanitizers) =="
"$scripts/check.sh"

echo "== ci.sh: lane 2/8 resilience (ctest -L resilience) =="
"$scripts/check.sh" --resilience

echo "== ci.sh: lane 3/8 agas (ctest -L agas) =="
"$scripts/check.sh" --agas

echo "== ci.sh: lane 4/8 partition (ctest -L partition) =="
"$scripts/check.sh" --partition

echo "== ci.sh: lane 5/8 simd (ctest -L simd) =="
"$scripts/check.sh" --simd

echo "== ci.sh: lane 6/8 serve (ctest -L serve + ws_policy perf gate) =="
"$scripts/check.sh" --serve

echo "== ci.sh: lane 7/8 torture (ctest -L torture) =="
"$scripts/check.sh" --torture

echo "== ci.sh: lane 8/8 bench smoke (px::bench vs BENCH_seed.json) =="
"$scripts/check.sh" --bench

echo "== ci.sh: all lanes passed =="
