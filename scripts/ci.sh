#!/usr/bin/env sh
# Single CI entry point: chains every verification lane in cost order.
#
#   1. tier-1        fresh build + full ctest + sanitizer re-run of the
#                    transport suites            (scripts/check.sh)
#   2. resilience    kill/restart + checkpoint/rollback suites under a
#                    16-seed torture sweep       (scripts/check.sh --resilience)
#   3. agas          migration edge cases + rebalancer planner/solver/
#                    cluster-model suites under a
#                    16-seed torture sweep       (scripts/check.sh --agas)
#   4. partition     partition schedules + quorum membership/fencing +
#                    gray-failure probing suites under a
#                    16-seed torture sweep       (scripts/check.sh --partition)
#   5. serve         scheduling-policy conformance + px::serve isolation
#                    sweeps, then the ws_policy vs BENCH_pr5.json
#                    regression gate             (scripts/check.sh --serve)
#   6. torture       all torture-labeled seed sweeps with a big budget
#                    (64 seeds per property)     (scripts/check.sh --torture)
#   7. bench         px::bench smoke run vs the committed BENCH_seed.json
#                    baseline, gross-regression threshold for timings, the
#                    in-binary coalescing and rebalance gates exact
#                                                (scripts/check.sh --bench)
#
# Knobs pass straight through: PX_SKIP_SAN=1 skips the sanitizer lane,
# PX_TORTURE_SEEDS overrides both sweep budgets, PX_BENCH_THRESHOLD the
# bench lane's regression threshold. Any lane failing fails the run
# immediately (set -e); later lanes reuse the build tree the first lane
# produced, so the whole chain configures/builds once.
set -eu

scripts=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

echo "== ci.sh: lane 1/7 tier-1 (build + full suite + sanitizers) =="
"$scripts/check.sh"

echo "== ci.sh: lane 2/7 resilience (ctest -L resilience) =="
"$scripts/check.sh" --resilience

echo "== ci.sh: lane 3/7 agas (ctest -L agas) =="
"$scripts/check.sh" --agas

echo "== ci.sh: lane 4/7 partition (ctest -L partition) =="
"$scripts/check.sh" --partition

echo "== ci.sh: lane 5/7 serve (ctest -L serve + ws_policy perf gate) =="
"$scripts/check.sh" --serve

echo "== ci.sh: lane 6/7 torture (ctest -L torture) =="
"$scripts/check.sh" --torture

echo "== ci.sh: lane 7/7 bench smoke (px::bench vs BENCH_seed.json) =="
"$scripts/check.sh" --bench

echo "== ci.sh: all lanes passed =="
