# Empty dependencies file for table4_counters_kunpeng.
# This may be replaced when dependencies are built.
