file(REMOVE_RECURSE
  "CMakeFiles/table4_counters_kunpeng.dir/table4_counters_kunpeng.cpp.o"
  "CMakeFiles/table4_counters_kunpeng.dir/table4_counters_kunpeng.cpp.o.d"
  "table4_counters_kunpeng"
  "table4_counters_kunpeng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_counters_kunpeng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
