# Empty compiler generated dependencies file for fig5_2d_kunpeng.
# This may be replaced when dependencies are built.
