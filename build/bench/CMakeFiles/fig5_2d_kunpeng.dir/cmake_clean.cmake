file(REMOVE_RECURSE
  "CMakeFiles/fig5_2d_kunpeng.dir/fig5_2d_kunpeng.cpp.o"
  "CMakeFiles/fig5_2d_kunpeng.dir/fig5_2d_kunpeng.cpp.o.d"
  "fig5_2d_kunpeng"
  "fig5_2d_kunpeng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2d_kunpeng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
