
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_2d_kunpeng.cpp" "bench/CMakeFiles/fig5_2d_kunpeng.dir/fig5_2d_kunpeng.cpp.o" "gcc" "bench/CMakeFiles/fig5_2d_kunpeng.dir/fig5_2d_kunpeng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/px_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
