# Empty dependencies file for fig7_2d_a64fx_large.
# This may be replaced when dependencies are built.
