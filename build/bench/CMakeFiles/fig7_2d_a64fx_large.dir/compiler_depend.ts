# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_2d_a64fx_large.
