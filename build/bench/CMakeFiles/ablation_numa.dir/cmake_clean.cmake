file(REMOVE_RECURSE
  "CMakeFiles/ablation_numa.dir/ablation_numa.cpp.o"
  "CMakeFiles/ablation_numa.dir/ablation_numa.cpp.o.d"
  "ablation_numa"
  "ablation_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
