file(REMOVE_RECURSE
  "CMakeFiles/px_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/px_bench_common.dir/bench_common.cpp.o.d"
  "libpx_bench_common.a"
  "libpx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/px_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
