# Empty dependencies file for px_bench_common.
# This may be replaced when dependencies are built.
