file(REMOVE_RECURSE
  "libpx_bench_common.a"
)
