file(REMOVE_RECURSE
  "CMakeFiles/fig4_2d_xeon.dir/fig4_2d_xeon.cpp.o"
  "CMakeFiles/fig4_2d_xeon.dir/fig4_2d_xeon.cpp.o.d"
  "fig4_2d_xeon"
  "fig4_2d_xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_2d_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
