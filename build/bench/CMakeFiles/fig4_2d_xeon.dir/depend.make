# Empty dependencies file for fig4_2d_xeon.
# This may be replaced when dependencies are built.
