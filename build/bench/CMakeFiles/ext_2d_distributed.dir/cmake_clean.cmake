file(REMOVE_RECURSE
  "CMakeFiles/ext_2d_distributed.dir/ext_2d_distributed.cpp.o"
  "CMakeFiles/ext_2d_distributed.dir/ext_2d_distributed.cpp.o.d"
  "ext_2d_distributed"
  "ext_2d_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_2d_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
