file(REMOVE_RECURSE
  "CMakeFiles/fig8_2d_tx2.dir/fig8_2d_tx2.cpp.o"
  "CMakeFiles/fig8_2d_tx2.dir/fig8_2d_tx2.cpp.o.d"
  "fig8_2d_tx2"
  "fig8_2d_tx2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_2d_tx2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
