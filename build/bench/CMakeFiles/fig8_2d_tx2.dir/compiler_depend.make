# Empty compiler generated dependencies file for fig8_2d_tx2.
# This may be replaced when dependencies are built.
