file(REMOVE_RECURSE
  "CMakeFiles/micro_parcel.dir/micro_parcel.cpp.o"
  "CMakeFiles/micro_parcel.dir/micro_parcel.cpp.o.d"
  "micro_parcel"
  "micro_parcel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parcel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
