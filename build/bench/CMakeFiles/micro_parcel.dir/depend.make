# Empty dependencies file for micro_parcel.
# This may be replaced when dependencies are built.
