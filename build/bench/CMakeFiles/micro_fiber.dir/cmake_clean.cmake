file(REMOVE_RECURSE
  "CMakeFiles/micro_fiber.dir/micro_fiber.cpp.o"
  "CMakeFiles/micro_fiber.dir/micro_fiber.cpp.o.d"
  "micro_fiber"
  "micro_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
