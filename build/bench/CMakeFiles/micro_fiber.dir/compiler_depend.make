# Empty compiler generated dependencies file for micro_fiber.
# This may be replaced when dependencies are built.
