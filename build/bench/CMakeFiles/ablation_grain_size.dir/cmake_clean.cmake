file(REMOVE_RECURSE
  "CMakeFiles/ablation_grain_size.dir/ablation_grain_size.cpp.o"
  "CMakeFiles/ablation_grain_size.dir/ablation_grain_size.cpp.o.d"
  "ablation_grain_size"
  "ablation_grain_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grain_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
