# Empty dependencies file for ablation_grain_size.
# This may be replaced when dependencies are built.
