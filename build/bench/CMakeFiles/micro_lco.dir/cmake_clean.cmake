file(REMOVE_RECURSE
  "CMakeFiles/micro_lco.dir/micro_lco.cpp.o"
  "CMakeFiles/micro_lco.dir/micro_lco.cpp.o.d"
  "micro_lco"
  "micro_lco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
