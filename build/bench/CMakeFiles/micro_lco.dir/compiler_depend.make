# Empty compiler generated dependencies file for micro_lco.
# This may be replaced when dependencies are built.
