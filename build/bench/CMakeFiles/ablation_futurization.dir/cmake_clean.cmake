file(REMOVE_RECURSE
  "CMakeFiles/ablation_futurization.dir/ablation_futurization.cpp.o"
  "CMakeFiles/ablation_futurization.dir/ablation_futurization.cpp.o.d"
  "ablation_futurization"
  "ablation_futurization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_futurization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
