# Empty compiler generated dependencies file for ablation_futurization.
# This may be replaced when dependencies are built.
