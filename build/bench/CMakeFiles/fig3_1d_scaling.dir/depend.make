# Empty dependencies file for fig3_1d_scaling.
# This may be replaced when dependencies are built.
