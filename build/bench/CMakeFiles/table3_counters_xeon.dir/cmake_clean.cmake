file(REMOVE_RECURSE
  "CMakeFiles/table3_counters_xeon.dir/table3_counters_xeon.cpp.o"
  "CMakeFiles/table3_counters_xeon.dir/table3_counters_xeon.cpp.o.d"
  "table3_counters_xeon"
  "table3_counters_xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_counters_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
