# Empty dependencies file for table3_counters_xeon.
# This may be replaced when dependencies are built.
