file(REMOVE_RECURSE
  "CMakeFiles/table6_counters_tx2.dir/table6_counters_tx2.cpp.o"
  "CMakeFiles/table6_counters_tx2.dir/table6_counters_tx2.cpp.o.d"
  "table6_counters_tx2"
  "table6_counters_tx2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_counters_tx2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
