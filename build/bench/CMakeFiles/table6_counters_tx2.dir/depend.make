# Empty dependencies file for table6_counters_tx2.
# This may be replaced when dependencies are built.
