# Empty compiler generated dependencies file for fig6_2d_a64fx.
# This may be replaced when dependencies are built.
