file(REMOVE_RECURSE
  "CMakeFiles/fig6_2d_a64fx.dir/fig6_2d_a64fx.cpp.o"
  "CMakeFiles/fig6_2d_a64fx.dir/fig6_2d_a64fx.cpp.o.d"
  "fig6_2d_a64fx"
  "fig6_2d_a64fx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2d_a64fx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
