# Empty compiler generated dependencies file for fig2_stream.
# This may be replaced when dependencies are built.
