file(REMOVE_RECURSE
  "CMakeFiles/fig2_stream.dir/fig2_stream.cpp.o"
  "CMakeFiles/fig2_stream.dir/fig2_stream.cpp.o.d"
  "fig2_stream"
  "fig2_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
