file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_blocking.dir/ablation_cache_blocking.cpp.o"
  "CMakeFiles/ablation_cache_blocking.dir/ablation_cache_blocking.cpp.o.d"
  "ablation_cache_blocking"
  "ablation_cache_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
