# Empty dependencies file for ablation_cache_blocking.
# This may be replaced when dependencies are built.
