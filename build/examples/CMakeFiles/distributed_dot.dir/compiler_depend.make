# Empty compiler generated dependencies file for distributed_dot.
# This may be replaced when dependencies are built.
