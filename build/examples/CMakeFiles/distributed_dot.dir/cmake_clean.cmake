file(REMOVE_RECURSE
  "CMakeFiles/distributed_dot.dir/distributed_dot.cpp.o"
  "CMakeFiles/distributed_dot.dir/distributed_dot.cpp.o.d"
  "distributed_dot"
  "distributed_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
