# Empty dependencies file for heat1d_cluster.
# This may be replaced when dependencies are built.
