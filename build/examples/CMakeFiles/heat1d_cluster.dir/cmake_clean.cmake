file(REMOVE_RECURSE
  "CMakeFiles/heat1d_cluster.dir/heat1d_cluster.cpp.o"
  "CMakeFiles/heat1d_cluster.dir/heat1d_cluster.cpp.o.d"
  "heat1d_cluster"
  "heat1d_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat1d_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
