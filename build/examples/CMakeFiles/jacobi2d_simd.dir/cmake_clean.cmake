file(REMOVE_RECURSE
  "CMakeFiles/jacobi2d_simd.dir/jacobi2d_simd.cpp.o"
  "CMakeFiles/jacobi2d_simd.dir/jacobi2d_simd.cpp.o.d"
  "jacobi2d_simd"
  "jacobi2d_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi2d_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
