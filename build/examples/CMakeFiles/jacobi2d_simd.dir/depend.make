# Empty dependencies file for jacobi2d_simd.
# This may be replaced when dependencies are built.
