file(REMOVE_RECURSE
  "libpx_core.a"
)
