
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/px/fibers/fiber.cpp" "src/CMakeFiles/px_core.dir/px/fibers/fiber.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/fibers/fiber.cpp.o.d"
  "/root/repo/src/px/fibers/stack.cpp" "src/CMakeFiles/px_core.dir/px/fibers/stack.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/fibers/stack.cpp.o.d"
  "/root/repo/src/px/parallel/executors.cpp" "src/CMakeFiles/px_core.dir/px/parallel/executors.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/parallel/executors.cpp.o.d"
  "/root/repo/src/px/runtime/runtime.cpp" "src/CMakeFiles/px_core.dir/px/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/runtime/runtime.cpp.o.d"
  "/root/repo/src/px/runtime/scheduler.cpp" "src/CMakeFiles/px_core.dir/px/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/runtime/scheduler.cpp.o.d"
  "/root/repo/src/px/runtime/task.cpp" "src/CMakeFiles/px_core.dir/px/runtime/task.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/runtime/task.cpp.o.d"
  "/root/repo/src/px/runtime/timer_service.cpp" "src/CMakeFiles/px_core.dir/px/runtime/timer_service.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/runtime/timer_service.cpp.o.d"
  "/root/repo/src/px/runtime/trace.cpp" "src/CMakeFiles/px_core.dir/px/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/runtime/trace.cpp.o.d"
  "/root/repo/src/px/runtime/worker.cpp" "src/CMakeFiles/px_core.dir/px/runtime/worker.cpp.o" "gcc" "src/CMakeFiles/px_core.dir/px/runtime/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/px_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
