# Empty dependencies file for px_core.
# This may be replaced when dependencies are built.
