file(REMOVE_RECURSE
  "CMakeFiles/px_core.dir/px/fibers/fiber.cpp.o"
  "CMakeFiles/px_core.dir/px/fibers/fiber.cpp.o.d"
  "CMakeFiles/px_core.dir/px/fibers/stack.cpp.o"
  "CMakeFiles/px_core.dir/px/fibers/stack.cpp.o.d"
  "CMakeFiles/px_core.dir/px/parallel/executors.cpp.o"
  "CMakeFiles/px_core.dir/px/parallel/executors.cpp.o.d"
  "CMakeFiles/px_core.dir/px/runtime/runtime.cpp.o"
  "CMakeFiles/px_core.dir/px/runtime/runtime.cpp.o.d"
  "CMakeFiles/px_core.dir/px/runtime/scheduler.cpp.o"
  "CMakeFiles/px_core.dir/px/runtime/scheduler.cpp.o.d"
  "CMakeFiles/px_core.dir/px/runtime/task.cpp.o"
  "CMakeFiles/px_core.dir/px/runtime/task.cpp.o.d"
  "CMakeFiles/px_core.dir/px/runtime/timer_service.cpp.o"
  "CMakeFiles/px_core.dir/px/runtime/timer_service.cpp.o.d"
  "CMakeFiles/px_core.dir/px/runtime/trace.cpp.o"
  "CMakeFiles/px_core.dir/px/runtime/trace.cpp.o.d"
  "CMakeFiles/px_core.dir/px/runtime/worker.cpp.o"
  "CMakeFiles/px_core.dir/px/runtime/worker.cpp.o.d"
  "libpx_core.a"
  "libpx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/px_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
