# Empty dependencies file for px_stencil.
# This may be replaced when dependencies are built.
