file(REMOVE_RECURSE
  "CMakeFiles/px_stencil.dir/px/stencil/heat1d.cpp.o"
  "CMakeFiles/px_stencil.dir/px/stencil/heat1d.cpp.o.d"
  "CMakeFiles/px_stencil.dir/px/stencil/heat1d_distributed.cpp.o"
  "CMakeFiles/px_stencil.dir/px/stencil/heat1d_distributed.cpp.o.d"
  "CMakeFiles/px_stencil.dir/px/stencil/jacobi2d_distributed.cpp.o"
  "CMakeFiles/px_stencil.dir/px/stencil/jacobi2d_distributed.cpp.o.d"
  "CMakeFiles/px_stencil.dir/px/stencil/reference.cpp.o"
  "CMakeFiles/px_stencil.dir/px/stencil/reference.cpp.o.d"
  "libpx_stencil.a"
  "libpx_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/px_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
