file(REMOVE_RECURSE
  "libpx_stencil.a"
)
