file(REMOVE_RECURSE
  "libpx_arch.a"
)
