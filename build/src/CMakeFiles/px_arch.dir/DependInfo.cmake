
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/px/arch/cluster_sim.cpp" "src/CMakeFiles/px_arch.dir/px/arch/cluster_sim.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/cluster_sim.cpp.o.d"
  "/root/repo/src/px/arch/counter_model.cpp" "src/CMakeFiles/px_arch.dir/px/arch/counter_model.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/counter_model.cpp.o.d"
  "/root/repo/src/px/arch/machine.cpp" "src/CMakeFiles/px_arch.dir/px/arch/machine.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/machine.cpp.o.d"
  "/root/repo/src/px/arch/perf_counters.cpp" "src/CMakeFiles/px_arch.dir/px/arch/perf_counters.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/perf_counters.cpp.o.d"
  "/root/repo/src/px/arch/roofline.cpp" "src/CMakeFiles/px_arch.dir/px/arch/roofline.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/roofline.cpp.o.d"
  "/root/repo/src/px/arch/scaling_model.cpp" "src/CMakeFiles/px_arch.dir/px/arch/scaling_model.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/scaling_model.cpp.o.d"
  "/root/repo/src/px/arch/stream_bench.cpp" "src/CMakeFiles/px_arch.dir/px/arch/stream_bench.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/stream_bench.cpp.o.d"
  "/root/repo/src/px/arch/stream_model.cpp" "src/CMakeFiles/px_arch.dir/px/arch/stream_model.cpp.o" "gcc" "src/CMakeFiles/px_arch.dir/px/arch/stream_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/px_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
