file(REMOVE_RECURSE
  "CMakeFiles/px_arch.dir/px/arch/cluster_sim.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/cluster_sim.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/counter_model.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/counter_model.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/machine.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/machine.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/perf_counters.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/perf_counters.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/roofline.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/roofline.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/scaling_model.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/scaling_model.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/stream_bench.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/stream_bench.cpp.o.d"
  "CMakeFiles/px_arch.dir/px/arch/stream_model.cpp.o"
  "CMakeFiles/px_arch.dir/px/arch/stream_model.cpp.o.d"
  "libpx_arch.a"
  "libpx_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/px_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
