# Empty dependencies file for px_arch.
# This may be replaced when dependencies are built.
