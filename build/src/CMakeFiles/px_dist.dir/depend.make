# Empty dependencies file for px_dist.
# This may be replaced when dependencies are built.
