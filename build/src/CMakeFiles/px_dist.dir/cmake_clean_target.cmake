file(REMOVE_RECURSE
  "libpx_dist.a"
)
