file(REMOVE_RECURSE
  "CMakeFiles/px_dist.dir/px/agas/gid.cpp.o"
  "CMakeFiles/px_dist.dir/px/agas/gid.cpp.o.d"
  "CMakeFiles/px_dist.dir/px/agas/registry.cpp.o"
  "CMakeFiles/px_dist.dir/px/agas/registry.cpp.o.d"
  "CMakeFiles/px_dist.dir/px/dist/dist_barrier.cpp.o"
  "CMakeFiles/px_dist.dir/px/dist/dist_barrier.cpp.o.d"
  "CMakeFiles/px_dist.dir/px/dist/distributed_domain.cpp.o"
  "CMakeFiles/px_dist.dir/px/dist/distributed_domain.cpp.o.d"
  "CMakeFiles/px_dist.dir/px/net/fabric.cpp.o"
  "CMakeFiles/px_dist.dir/px/net/fabric.cpp.o.d"
  "CMakeFiles/px_dist.dir/px/parcel/action_registry.cpp.o"
  "CMakeFiles/px_dist.dir/px/parcel/action_registry.cpp.o.d"
  "libpx_dist.a"
  "libpx_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/px_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
