
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/px/agas/gid.cpp" "src/CMakeFiles/px_dist.dir/px/agas/gid.cpp.o" "gcc" "src/CMakeFiles/px_dist.dir/px/agas/gid.cpp.o.d"
  "/root/repo/src/px/agas/registry.cpp" "src/CMakeFiles/px_dist.dir/px/agas/registry.cpp.o" "gcc" "src/CMakeFiles/px_dist.dir/px/agas/registry.cpp.o.d"
  "/root/repo/src/px/dist/dist_barrier.cpp" "src/CMakeFiles/px_dist.dir/px/dist/dist_barrier.cpp.o" "gcc" "src/CMakeFiles/px_dist.dir/px/dist/dist_barrier.cpp.o.d"
  "/root/repo/src/px/dist/distributed_domain.cpp" "src/CMakeFiles/px_dist.dir/px/dist/distributed_domain.cpp.o" "gcc" "src/CMakeFiles/px_dist.dir/px/dist/distributed_domain.cpp.o.d"
  "/root/repo/src/px/net/fabric.cpp" "src/CMakeFiles/px_dist.dir/px/net/fabric.cpp.o" "gcc" "src/CMakeFiles/px_dist.dir/px/net/fabric.cpp.o.d"
  "/root/repo/src/px/parcel/action_registry.cpp" "src/CMakeFiles/px_dist.dir/px/parcel/action_registry.cpp.o" "gcc" "src/CMakeFiles/px_dist.dir/px/parcel/action_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/px_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
