# Empty compiler generated dependencies file for px_support.
# This may be replaced when dependencies are built.
