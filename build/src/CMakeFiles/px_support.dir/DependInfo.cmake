
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/px/support/affinity.cpp" "src/CMakeFiles/px_support.dir/px/support/affinity.cpp.o" "gcc" "src/CMakeFiles/px_support.dir/px/support/affinity.cpp.o.d"
  "/root/repo/src/px/support/env.cpp" "src/CMakeFiles/px_support.dir/px/support/env.cpp.o" "gcc" "src/CMakeFiles/px_support.dir/px/support/env.cpp.o.d"
  "/root/repo/src/px/support/topology.cpp" "src/CMakeFiles/px_support.dir/px/support/topology.cpp.o" "gcc" "src/CMakeFiles/px_support.dir/px/support/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
