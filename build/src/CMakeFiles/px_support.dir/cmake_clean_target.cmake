file(REMOVE_RECURSE
  "libpx_support.a"
)
