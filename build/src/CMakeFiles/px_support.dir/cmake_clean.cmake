file(REMOVE_RECURSE
  "CMakeFiles/px_support.dir/px/support/affinity.cpp.o"
  "CMakeFiles/px_support.dir/px/support/affinity.cpp.o.d"
  "CMakeFiles/px_support.dir/px/support/env.cpp.o"
  "CMakeFiles/px_support.dir/px/support/env.cpp.o.d"
  "CMakeFiles/px_support.dir/px/support/topology.cpp.o"
  "CMakeFiles/px_support.dir/px/support/topology.cpp.o.d"
  "libpx_support.a"
  "libpx_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/px_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
