# Empty dependencies file for test_query_sort.
# This may be replaced when dependencies are built.
