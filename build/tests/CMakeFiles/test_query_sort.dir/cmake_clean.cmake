file(REMOVE_RECURSE
  "CMakeFiles/test_query_sort.dir/test_query_sort.cpp.o"
  "CMakeFiles/test_query_sort.dir/test_query_sort.cpp.o.d"
  "test_query_sort"
  "test_query_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
