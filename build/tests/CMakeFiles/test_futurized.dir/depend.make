# Empty dependencies file for test_futurized.
# This may be replaced when dependencies are built.
