file(REMOVE_RECURSE
  "CMakeFiles/test_futurized.dir/test_futurized.cpp.o"
  "CMakeFiles/test_futurized.dir/test_futurized.cpp.o.d"
  "test_futurized"
  "test_futurized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_futurized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
