file(REMOVE_RECURSE
  "CMakeFiles/test_ws_deque.dir/test_ws_deque.cpp.o"
  "CMakeFiles/test_ws_deque.dir/test_ws_deque.cpp.o.d"
  "test_ws_deque"
  "test_ws_deque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ws_deque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
