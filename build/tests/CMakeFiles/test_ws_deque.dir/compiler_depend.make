# Empty compiler generated dependencies file for test_ws_deque.
# This may be replaced when dependencies are built.
