# Empty compiler generated dependencies file for test_jacobi2d.
# This may be replaced when dependencies are built.
