file(REMOVE_RECURSE
  "CMakeFiles/test_jacobi2d.dir/test_jacobi2d.cpp.o"
  "CMakeFiles/test_jacobi2d.dir/test_jacobi2d.cpp.o.d"
  "test_jacobi2d"
  "test_jacobi2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jacobi2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
