file(REMOVE_RECURSE
  "CMakeFiles/test_lcos.dir/test_lcos.cpp.o"
  "CMakeFiles/test_lcos.dir/test_lcos.cpp.o.d"
  "test_lcos"
  "test_lcos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
