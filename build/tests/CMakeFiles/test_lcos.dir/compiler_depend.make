# Empty compiler generated dependencies file for test_lcos.
# This may be replaced when dependencies are built.
