file(REMOVE_RECURSE
  "CMakeFiles/test_fibers.dir/test_fibers.cpp.o"
  "CMakeFiles/test_fibers.dir/test_fibers.cpp.o.d"
  "test_fibers"
  "test_fibers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fibers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
