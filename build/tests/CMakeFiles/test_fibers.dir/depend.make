# Empty dependencies file for test_fibers.
# This may be replaced when dependencies are built.
