file(REMOVE_RECURSE
  "CMakeFiles/test_stream_bench.dir/test_stream_bench.cpp.o"
  "CMakeFiles/test_stream_bench.dir/test_stream_bench.cpp.o.d"
  "test_stream_bench"
  "test_stream_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
