# Empty dependencies file for test_stream_bench.
# This may be replaced when dependencies are built.
