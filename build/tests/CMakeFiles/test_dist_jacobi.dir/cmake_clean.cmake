file(REMOVE_RECURSE
  "CMakeFiles/test_dist_jacobi.dir/test_dist_jacobi.cpp.o"
  "CMakeFiles/test_dist_jacobi.dir/test_dist_jacobi.cpp.o.d"
  "test_dist_jacobi"
  "test_dist_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
