# Empty dependencies file for test_dist_jacobi.
# This may be replaced when dependencies are built.
