# Empty dependencies file for test_heat1d.
# This may be replaced when dependencies are built.
