file(REMOVE_RECURSE
  "CMakeFiles/test_heat1d.dir/test_heat1d.cpp.o"
  "CMakeFiles/test_heat1d.dir/test_heat1d.cpp.o.d"
  "test_heat1d"
  "test_heat1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heat1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
