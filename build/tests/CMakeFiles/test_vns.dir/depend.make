# Empty dependencies file for test_vns.
# This may be replaced when dependencies are built.
