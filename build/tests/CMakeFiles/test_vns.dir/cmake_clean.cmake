file(REMOVE_RECURSE
  "CMakeFiles/test_vns.dir/test_vns.cpp.o"
  "CMakeFiles/test_vns.dir/test_vns.cpp.o.d"
  "test_vns"
  "test_vns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
