file(REMOVE_RECURSE
  "CMakeFiles/test_counter_model.dir/test_counter_model.cpp.o"
  "CMakeFiles/test_counter_model.dir/test_counter_model.cpp.o.d"
  "test_counter_model"
  "test_counter_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
