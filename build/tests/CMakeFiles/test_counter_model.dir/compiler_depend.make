# Empty compiler generated dependencies file for test_counter_model.
# This may be replaced when dependencies are built.
