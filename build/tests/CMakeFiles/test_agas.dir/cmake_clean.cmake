file(REMOVE_RECURSE
  "CMakeFiles/test_agas.dir/test_agas.cpp.o"
  "CMakeFiles/test_agas.dir/test_agas.cpp.o.d"
  "test_agas"
  "test_agas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
