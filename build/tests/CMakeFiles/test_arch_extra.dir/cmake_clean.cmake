file(REMOVE_RECURSE
  "CMakeFiles/test_arch_extra.dir/test_arch_extra.cpp.o"
  "CMakeFiles/test_arch_extra.dir/test_arch_extra.cpp.o.d"
  "test_arch_extra"
  "test_arch_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
