# Empty dependencies file for test_stream_model.
# This may be replaced when dependencies are built.
