file(REMOVE_RECURSE
  "CMakeFiles/test_stream_model.dir/test_stream_model.cpp.o"
  "CMakeFiles/test_stream_model.dir/test_stream_model.cpp.o.d"
  "test_stream_model"
  "test_stream_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
