# Empty compiler generated dependencies file for test_future.
# This may be replaced when dependencies are built.
