file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_vector.dir/test_partitioned_vector.cpp.o"
  "CMakeFiles/test_partitioned_vector.dir/test_partitioned_vector.cpp.o.d"
  "test_partitioned_vector"
  "test_partitioned_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
