
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simd.cpp" "tests/CMakeFiles/test_simd.dir/test_simd.cpp.o" "gcc" "tests/CMakeFiles/test_simd.dir/test_simd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/px_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/px_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
