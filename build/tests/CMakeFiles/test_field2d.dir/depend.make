# Empty dependencies file for test_field2d.
# This may be replaced when dependencies are built.
