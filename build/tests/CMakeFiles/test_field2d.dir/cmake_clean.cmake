file(REMOVE_RECURSE
  "CMakeFiles/test_field2d.dir/test_field2d.cpp.o"
  "CMakeFiles/test_field2d.dir/test_field2d.cpp.o.d"
  "test_field2d"
  "test_field2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
