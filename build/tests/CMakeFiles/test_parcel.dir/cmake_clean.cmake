file(REMOVE_RECURSE
  "CMakeFiles/test_parcel.dir/test_parcel.cpp.o"
  "CMakeFiles/test_parcel.dir/test_parcel.cpp.o.d"
  "test_parcel"
  "test_parcel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parcel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
