file(REMOVE_RECURSE
  "CMakeFiles/test_dist_heat.dir/test_dist_heat.cpp.o"
  "CMakeFiles/test_dist_heat.dir/test_dist_heat.cpp.o.d"
  "test_dist_heat"
  "test_dist_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
