# Empty compiler generated dependencies file for test_dist_heat.
# This may be replaced when dependencies are built.
