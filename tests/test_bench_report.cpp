// px::bench reporter: robust statistics, px-bench/1 JSON round-trip,
// baseline comparison semantics, and determinism of the non-timing fields
// under a fixed run seed. The CLI/exit-code layer on top lives in
// test_bench_cli.cpp (bench-enabled builds only).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "px/bench/report.hpp"

namespace {

using namespace px::bench;

TEST(BenchStats, MedianFixedSamples) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);           // odd
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);      // even
  EXPECT_DOUBLE_EQ(median({2.0, 2.0, 2.0, 9.0, 2.0}), 2.0); // outlier-proof
}

TEST(BenchStats, MadFixedSample) {
  // xs = {1, 1, 2, 2, 4, 6, 9}, median 2; |xs - 2| = {1, 1, 0, 0, 2, 4, 7},
  // median of that is 1.
  std::vector<double> xs{1, 1, 2, 2, 4, 6, 9};
  double const m = median(xs);
  EXPECT_DOUBLE_EQ(m, 2.0);
  EXPECT_DOUBLE_EQ(mad(xs, m), 1.0);
}

report make_report() {
  report r;
  r.run_seed = 0x5eedbeef;
  r.reps = 5;
  bench_result a;
  a.name = "micro_runtime.spawn_latency";
  a.params = {{"workers", "4"}, {"batch", "256"}};
  a.iterations = 32768;
  a.reps = 5;
  a.ns_per_op_median = 1234.5;
  a.ns_per_op_mad = 67.25;
  a.counters = {{"/px/scheduler{px}/tasks_spawned", 163840}};
  bench_result b;
  b.name = "fig3.heat1d";
  b.iterations = 100;
  b.reps = 5;
  b.ns_per_op_median = 2.125;
  b.ns_per_op_mad = 0.0;
  r.benchmarks = {a, b};
  return r;
}

TEST(BenchReport, JsonRoundTrip) {
  report const r = make_report();
  std::string const json = r.to_json();
  report const back = parse_report_json(json);

  EXPECT_EQ(back.schema, report_schema);
  EXPECT_EQ(back.run_seed, r.run_seed);
  EXPECT_EQ(back.reps, r.reps);
  ASSERT_EQ(back.benchmarks.size(), 2u);
  auto const& a = back.benchmarks[0];
  EXPECT_EQ(a.name, "micro_runtime.spawn_latency");
  ASSERT_EQ(a.params.size(), 2u);
  EXPECT_EQ(a.params[1].first, "batch");
  EXPECT_EQ(a.params[1].second, "256");
  EXPECT_EQ(a.iterations, 32768u);
  EXPECT_DOUBLE_EQ(a.ns_per_op_median, 1234.5);
  EXPECT_DOUBLE_EQ(a.ns_per_op_mad, 67.25);
  ASSERT_EQ(a.counters.size(), 1u);
  EXPECT_EQ(a.counters[0].first, "/px/scheduler{px}/tasks_spawned");
  EXPECT_EQ(a.counters[0].second, 163840u);
  EXPECT_EQ(back.benchmarks[1].name, "fig3.heat1d");
  EXPECT_TRUE(back.benchmarks[1].params.empty());
  EXPECT_TRUE(back.benchmarks[1].counters.empty());

  // Serialization is a pure function of the contents.
  EXPECT_EQ(back.to_json(), json);
}

TEST(BenchReport, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(parse_report_json(""), std::runtime_error);
  EXPECT_THROW(parse_report_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_report_json("{\"schema\":\"wrong/9\"}"),
               std::runtime_error);
  std::string const good = make_report().to_json();
  EXPECT_THROW(parse_report_json(good.substr(0, good.size() / 2)),
               std::runtime_error);
}

TEST(BenchReport, FileRoundTripAndMissingFile) {
  report const r = make_report();
  std::string const path = "/tmp/px_bench_report_test.json";
  ASSERT_TRUE(write_report_file(r, path));
  report const back = load_report_file(path);
  EXPECT_EQ(back.to_json(), r.to_json());
  std::remove(path.c_str());
  EXPECT_THROW(load_report_file("/tmp/px_bench_no_such_file.json"),
               std::runtime_error);
}

TEST(BenchCompare, PassRegressionAndMissing) {
  report base = make_report();
  report cur = make_report();

  // Within threshold: +4% on one benchmark, improvement on the other.
  cur.benchmarks[0].ns_per_op_median = base.benchmarks[0].ns_per_op_median * 1.04;
  cur.benchmarks[1].ns_per_op_median = base.benchmarks[1].ns_per_op_median * 0.5;
  compare_result ok = compare(base, cur, 5.0);
  EXPECT_TRUE(ok.passed);
  ASSERT_EQ(ok.rows.size(), 2u);
  EXPECT_FALSE(ok.rows[0].regressed);
  EXPECT_NEAR(ok.rows[0].delta_pct, 4.0, 0.01);
  EXPECT_LT(ok.rows[1].delta_pct, 0.0);

  // Beyond threshold: regression flagged, comparison fails.
  cur.benchmarks[0].ns_per_op_median = base.benchmarks[0].ns_per_op_median * 1.5;
  compare_result bad = compare(base, cur, 5.0);
  EXPECT_FALSE(bad.passed);
  EXPECT_TRUE(bad.rows[0].regressed);
  EXPECT_NE(bad.to_text().find("REGRESSION"), std::string::npos);

  // Missing on either side is reported but not a failure by itself.
  cur = make_report();
  cur.benchmarks.pop_back();
  bench_result extra;
  extra.name = "micro_new.only_in_current";
  extra.iterations = 1;
  extra.reps = 1;
  extra.ns_per_op_median = 1.0;
  cur.benchmarks.push_back(extra);
  compare_result part = compare(base, cur, 5.0);
  EXPECT_TRUE(part.passed);
  ASSERT_EQ(part.missing_in_current.size(), 1u);
  EXPECT_EQ(part.missing_in_current[0], "fig3.heat1d");
  ASSERT_EQ(part.missing_in_baseline.size(), 1u);
  EXPECT_EQ(part.missing_in_baseline[0], "micro_new.only_in_current");
}

// Two runs of the same cases under the same runner options must agree on
// every non-timing field (names, params, iteration counts, reps, seed,
// schema) — the property that makes --compare meaningful across runs.
TEST(BenchRunner, NonTimingFieldsDeterministicUnderFixedSeed) {
  auto const run_suite = [] {
    runner_options opts;
    opts.reps = 3;
    opts.warmup = 0;
    opts.run_seed = 0xfeedface;
    opts.verbose = false;
    runner r(opts);
    r.run("determinism.case_a", {{"k", "1"}}, 64, [](std::uint64_t iters) {
      volatile std::uint64_t sink = 0;
      for (std::uint64_t i = 0; i < iters; ++i) sink = sink + i;
    });
    r.run("determinism.case_b", {}, 16, [](std::uint64_t) {});
    return r.result();
  };
  report const r1 = run_suite();
  report const r2 = run_suite();

  EXPECT_EQ(r1.schema, r2.schema);
  EXPECT_EQ(r1.run_seed, 0xfeedfaceu);
  EXPECT_EQ(r1.run_seed, r2.run_seed);
  EXPECT_EQ(r1.reps, r2.reps);
  ASSERT_EQ(r1.benchmarks.size(), r2.benchmarks.size());
  for (std::size_t i = 0; i < r1.benchmarks.size(); ++i) {
    auto const& a = r1.benchmarks[i];
    auto const& b = r2.benchmarks[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.params, b.params);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.reps, b.reps);
    EXPECT_GT(a.ns_per_op_median, 0.0);
  }
}

}  // namespace
