// Tests for the futurized extensions: the dataflow-driven 1D heat solver
// (HPX 1d_stencil_4 style), future::unwrap, and task tracing.
#include <gtest/gtest.h>

#include <fstream>

#include "px/px.hpp"
#include "px/stencil/stencil.hpp"

namespace {

px::scheduler_config cfg(std::size_t w) {
  px::scheduler_config c;
  c.num_workers = w;
  return c;
}

// ---- dataflow 1D solver --------------------------------------------------

class DataflowPartitions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DataflowPartitions, MatchesSerialReference) {
  px::runtime rt(cfg(3));
  auto initial = px::stencil::heat1d_sine_initial(401);
  px::stencil::heat1d_dataflow_config dcfg;
  dcfg.steps = 20;
  dcfg.partitions = GetParam();
  auto result = px::sync_wait(rt, [&] {
    return px::stencil::run_heat1d_dataflow(initial, dcfg);
  });
  auto ref = px::stencil::reference_heat1d(initial, dcfg.steps, dcfg.k);
  EXPECT_LT(px::stencil::max_abs_diff(result, ref), 1e-15)
      << GetParam() << " partitions";
}

INSTANTIATE_TEST_SUITE_P(Partitions, DataflowPartitions,
                         ::testing::Values(1, 2, 3, 5, 16, 64));

TEST(DataflowHeat, AgreesWithBulkSynchronousSolver) {
  px::runtime rt(cfg(4));
  auto initial = px::stencil::heat1d_sine_initial(600);
  constexpr std::size_t steps = 30;

  px::stencil::heat1d_config bulk_cfg;
  bulk_cfg.steps = steps;
  auto bulk = px::sync_wait(rt, [&] {
    return px::stencil::run_heat1d(px::execution::par, initial, bulk_cfg);
  });

  px::stencil::heat1d_dataflow_config flow_cfg;
  flow_cfg.steps = steps;
  flow_cfg.partitions = 8;
  auto flow = px::sync_wait(rt, [&] {
    return px::stencil::run_heat1d_dataflow(initial, flow_cfg);
  });

  EXPECT_LT(px::stencil::max_abs_diff(bulk.values, flow), 1e-15);
}

TEST(DataflowHeat, AnalyticDecay) {
  px::runtime rt(cfg(3));
  constexpr std::size_t nx = 1001, steps = 80;
  auto initial = px::stencil::heat1d_sine_initial(nx);
  px::stencil::heat1d_dataflow_config dcfg;
  dcfg.steps = steps;
  dcfg.partitions = 10;
  auto result = px::sync_wait(rt, [&] {
    return px::stencil::run_heat1d_dataflow(initial, dcfg);
  });
  auto analytic = px::stencil::analytic_heat1d_sine(nx, steps, dcfg.k);
  EXPECT_LT(px::stencil::max_abs_diff(result, analytic), 1e-10);
}

TEST(DataflowHeat, ThrottledMatchesUnthrottled) {
  px::runtime rt(cfg(3));
  auto initial = px::stencil::heat1d_sine_initial(320);
  px::stencil::heat1d_dataflow_config base;
  base.steps = 40;
  base.partitions = 8;
  auto unthrottled = px::sync_wait(rt, [&] {
    return px::stencil::run_heat1d_dataflow(initial, base);
  });
  for (std::size_t window : {1u, 2u, 5u, 40u}) {
    auto throttled_cfg = base;
    throttled_cfg.max_outstanding_steps = window;
    auto throttled = px::sync_wait(rt, [&] {
      return px::stencil::run_heat1d_dataflow(initial, throttled_cfg);
    });
    EXPECT_LT(px::stencil::max_abs_diff(unthrottled, throttled), 1e-15)
        << "window " << window;
  }
}

TEST(DataflowHeat, ThrottleBoundsLiveTasks) {
  // With a window of 2 and 8 partitions, at most ~3 windows x 8 tasks are
  // alive at once — far below steps x partitions.
  px::runtime rt(cfg(2));
  auto initial = px::stencil::heat1d_sine_initial(160);
  px::stencil::heat1d_dataflow_config dcfg;
  dcfg.steps = 100;
  dcfg.partitions = 8;
  dcfg.max_outstanding_steps = 2;
  px::sync_wait(rt, [&] {
    auto out = px::stencil::run_heat1d_dataflow(initial, dcfg);
    return out.size();
  });
  // All tasks completed; the throttle's correctness is the result match
  // (previous test); here we only require clean completion. (A finished
  // task's value can be observable a hair before its fiber retires, so
  // quiesce first.)
  rt.wait_quiescent();
  EXPECT_EQ(rt.sched().active_tasks(), 0u);
}

// ---- sliding semaphore -----------------------------------------------------

struct SlidingTest : ::testing::Test {
  px::runtime rt{cfg(3)};
};

TEST_F(SlidingTest, GateOpensWithinWindow) {
  px::sliding_semaphore sem(3, 0);  // signalled = 0
  EXPECT_TRUE(sem.try_wait(3));
  EXPECT_FALSE(sem.try_wait(4));
  sem.signal(5);
  EXPECT_TRUE(sem.try_wait(8));
  EXPECT_FALSE(sem.try_wait(9));
  EXPECT_EQ(sem.signalled(), 5);
}

TEST_F(SlidingTest, SignalIsMonotone) {
  px::sliding_semaphore sem(0, 10);
  sem.signal(5);  // below current: ignored
  EXPECT_EQ(sem.signalled(), 10);
  sem.signal(12);
  EXPECT_EQ(sem.signalled(), 12);
}

TEST_F(SlidingTest, WaiterSuspendsUntilSignal) {
  px::sliding_semaphore sem(1, 0);
  std::atomic<int> phase{0};
  rt.post([&] {
    sem.wait(5);  // needs signalled >= 4
    phase.store(2);
  });
  rt.post([&] {
    px::this_task::sleep_for(std::chrono::milliseconds(10));
    phase.store(1);
    sem.signal(4);
  });
  rt.wait_quiescent();
  EXPECT_EQ(phase.load(), 2);
}

TEST_F(SlidingTest, ManyWaitersReleasedInWindowOrder) {
  px::sliding_semaphore sem(0, 0);
  std::atomic<int> released{0};
  for (int v = 1; v <= 5; ++v)
    rt.post([&, v] {
      sem.wait(v);
      released.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(released.load(), 0);
  sem.signal(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(released.load(), 3);
  sem.signal(5);
  rt.wait_quiescent();
  EXPECT_EQ(released.load(), 5);
}

// ---- future::unwrap ------------------------------------------------------

struct UnwrapTest : ::testing::Test {
  px::runtime rt{cfg(3)};
};

TEST_F(UnwrapTest, FlattensNestedFuture) {
  int v = px::sync_wait(rt, [] {
    auto nested = px::async([] { return px::async([] { return 42; }); });
    return px::unwrap(std::move(nested)).get();
  });
  EXPECT_EQ(v, 42);
}

TEST_F(UnwrapTest, OuterExceptionPropagates) {
  EXPECT_THROW(px::sync_wait(rt,
                             [] {
                               auto nested = px::async(
                                   []() -> px::future<int> {
                                     throw std::runtime_error("outer");
                                   });
                               return px::unwrap(std::move(nested)).get();
                             }),
               std::runtime_error);
}

TEST_F(UnwrapTest, InnerExceptionPropagates) {
  EXPECT_THROW(px::sync_wait(rt,
                             [] {
                               auto nested = px::async([] {
                                 return px::async([]() -> int {
                                   throw std::logic_error("inner");
                                 });
                               });
                               return px::unwrap(std::move(nested)).get();
                             }),
               std::logic_error);
}

TEST_F(UnwrapTest, VoidUnwrap) {
  px::sync_wait(rt, [] {
    auto nested = px::async([] { return px::async([] {}); });
    px::unwrap(std::move(nested)).get();
    return 0;
  });
  SUCCEED();
}

// ---- tracing --------------------------------------------------------------

TEST(Trace, DisabledByDefaultAndCheap) {
  EXPECT_FALSE(px::trace::enabled());
  px::runtime rt(cfg(2));
  rt.post([] {});
  rt.wait_quiescent();
  EXPECT_EQ(px::trace::event_count(), 0u);
}

TEST(Trace, RecordsTaskSlices) {
  px::trace::enable();
  {
    px::runtime rt(cfg(2));
    for (int i = 0; i < 20; ++i) rt.post([] {});
    rt.wait_quiescent();
  }
  px::trace::disable();
  EXPECT_GE(px::trace::event_count(), 20u);
  auto json = px::trace::to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task\""), std::string::npos);
}

TEST(Trace, SuspendedTasksProduceMultipleSlices) {
  px::trace::enable();
  {
    px::runtime rt(cfg(2));
    rt.post([] {
      px::this_task::sleep_for(std::chrono::milliseconds(5));
    });
    rt.wait_quiescent();
  }
  px::trace::disable();
  // One slice before the sleep, one after resume.
  EXPECT_GE(px::trace::event_count(), 2u);
}

TEST(Trace, WriteJsonFile) {
  px::trace::enable();
  {
    px::runtime rt(cfg(2));
    rt.post([] {});
    rt.wait_quiescent();
  }
  px::trace::disable();
  std::string const path = "/tmp/px_trace_test.json";
  ASSERT_TRUE(px::trace::write_json_file(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, px::trace::to_json());
}

TEST(Trace, ScopedRegionRecordsUserSlices) {
  px::trace::enable();
  {
    px::runtime rt(cfg(2));
    px::sync_wait(rt, [] {
      px::trace::scoped_region region("user-phase");
      volatile int x = 0;
      for (int i = 0; i < 1000; ++i) x = x + i;
      return x;
    });
  }
  px::trace::disable();
  EXPECT_NE(px::trace::to_json().find("\"name\":\"user-phase\""),
            std::string::npos);
}

TEST(Trace, ScopedRegionOffWorkerUsesNamedExternalLane) {
  px::trace::enable();
  { px::trace::scoped_region region("off-worker-phase"); }
  px::trace::disable();
  auto json = px::trace::to_json();
  EXPECT_NE(json.find("\"name\":\"off-worker-phase\""), std::string::npos);
  // Off-worker slices land on the dedicated external lane, which to_json()
  // names via a thread_name metadata event so viewers don't show it as a
  // phantom worker.
  std::string const lane_tid =
      "\"tid\":" + std::to_string(px::trace::external_lane);
  EXPECT_NE(json.find(lane_tid), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"external\"}"), std::string::npos);
}

TEST(Trace, EnableClearsPreviousEvents) {
  px::trace::enable();
  px::trace::record_slice("x", 1, 0, 1, 0);
  EXPECT_EQ(px::trace::event_count(), 1u);
  px::trace::enable();
  EXPECT_EQ(px::trace::event_count(), 0u);
  px::trace::disable();
}

// ---- worker utilization -----------------------------------------------------

TEST(Utilization, BusyTimeAccumulates) {
  px::runtime rt(cfg(2));
  rt.post([] {
    volatile double acc = 0;
    for (int i = 0; i < 2000000; ++i) acc = acc + 1.0;
  });
  rt.wait_quiescent();
  EXPECT_GT(rt.sched().aggregate_stats().busy_ns, 100000u);  // >0.1 ms
}

}  // namespace
