// Stress and randomized-property tests across the whole stack: heavy task
// churn with suspensions, random dataflow DAGs validated against serial
// evaluation, cross-locality rings, and randomized stencil shapes.
#include <gtest/gtest.h>

#include <numeric>

#include "px/px.hpp"
#include "px/dist/distributed_domain.hpp"
#include "px/support/random.hpp"

namespace {

// Forward the token around the ring; when hops run out, signal the flag's
// owning locality (the terminal hop may land anywhere on the ring).
struct ring_done {
  px::event done;
  std::atomic<std::uint64_t> token{0};
};

void ring_finish(px::dist::locality& here, std::uint64_t token,
                 px::agas::gid done_flag) {
  auto flag = here.agas().resolve<ring_done>(done_flag);
  PX_ASSERT(flag != nullptr);
  flag->token.store(token);
  flag->done.set();
}

void ring_hop(px::dist::locality& here, std::uint32_t hops_left,
              std::uint64_t token, px::agas::gid done_flag) {
  if (hops_left == 0) {
    here.apply<&ring_finish>(done_flag.locality(), token, done_flag);
    return;
  }
  auto next = static_cast<std::uint32_t>((here.id() + 1) %
                                         here.domain().size());
  here.apply<&ring_hop>(next, hops_left - 1, token + here.id(), done_flag);
}

}  // namespace

PX_REGISTER_ACTION(ring_finish)
PX_REGISTER_ACTION(ring_hop)

namespace {

px::scheduler_config wcfg(std::size_t w) {
  px::scheduler_config c;
  c.num_workers = w;
  return c;
}

TEST(Stress, TaskChurnWithMixedSuspensions) {
  px::runtime rt(wcfg(4));
  constexpr int n = 5000;
  std::atomic<long> sum{0};
  px::counting_semaphore sem(16);
  px::channel<int> relay;
  px::xoshiro256ss rng(1);

  // A relay consumer that echoes back.
  std::atomic<bool> stop{false};
  rt.post([&] {
    for (;;) {
      int v = relay.get();
      if (v < 0) return;
      sum.fetch_add(v % 3);
    }
  });

  for (int i = 0; i < n; ++i) {
    switch (rng.below(4)) {
      case 0:
        rt.post([&sum, i] { sum.fetch_add(i % 5); });
        break;
      case 1:
        rt.post([&] {
          sem.acquire();
          px::this_task::yield();
          sem.release();
          sum.fetch_add(1);
        });
        break;
      case 2:
        rt.post([&relay, i] { relay.send(i); });
        break;
      default:
        rt.post([&sum] {
          auto f = px::async([] { return 2; });
          sum.fetch_add(f.get());
        });
        break;
    }
  }
  // Drain: wait until everything but the relay consumer is done, then
  // poison it.
  while (rt.sched().active_tasks() > 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  relay.send(-1);
  rt.wait_quiescent();
  (void)stop;
  EXPECT_GT(sum.load(), 0);
  EXPECT_GE(rt.sched().tasks_spawned(), static_cast<std::uint64_t>(n));
}

TEST(Stress, RandomDataflowDagMatchesSerialEvaluation) {
  px::runtime rt(wcfg(3));
  // Build a random DAG over 60 nodes: node i depends on up to two earlier
  // nodes; value = 1 + sum of dependency values (mod large prime).
  constexpr std::size_t n = 60;
  px::xoshiro256ss rng(7);
  std::vector<std::array<int, 2>> deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    deps[i][0] = i == 0 ? -1 : static_cast<int>(rng.below(i));
    deps[i][1] = i < 2 ? -1 : static_cast<int>(rng.below(i));
  }

  // Serial evaluation.
  std::vector<long> serial(n);
  for (std::size_t i = 0; i < n; ++i) {
    long v = 1;
    for (int d : deps[i])
      if (d >= 0) v += serial[static_cast<std::size_t>(d)];
    serial[i] = v % 1000003;
  }

  // Futurized evaluation.
  auto result = px::sync_wait(rt, [&] {
    std::vector<px::shared_future<long>> nodes;
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto d0 = deps[i][0];
      auto d1 = deps[i][1];
      px::shared_future<long> left =
          d0 >= 0 ? nodes[static_cast<std::size_t>(d0)]
                  : px::shared_future<long>(px::make_ready_future(0L));
      px::shared_future<long> right =
          d1 >= 0 ? nodes[static_cast<std::size_t>(d1)]
                  : px::shared_future<long>(px::make_ready_future(0L));
      nodes.emplace_back(px::async([left, right] {
        return (1 + left.get() + right.get()) % 1000003;
      }));
    }
    std::vector<long> out;
    for (auto& f : nodes) out.push_back(f.get());
    return out;
  });
  EXPECT_EQ(result, serial);
}

TEST(Stress, ParcelRingAcrossLocalities) {
  px::dist::domain_config cfg;
  cfg.num_localities = 5;
  cfg.locality_cfg.num_workers = 1;
  cfg.injection_scale = 0.0;
  px::dist::distributed_domain dom(cfg);

  std::uint64_t token = dom.run([](px::dist::locality& loc0) {
    auto flag = std::make_shared<ring_done>();
    auto g = loc0.agas().bind(flag);
    // 25 hops around 5 localities starting at 1.
    loc0.apply<&ring_hop>(1, 25, 0, g);
    flag->done.wait();
    loc0.agas().unbind(g);
    return flag->token.load();
  });
  // Sum of here.id() over hops 1..25 starting at locality 1 around a
  // 5-ring: ids cycle 1,2,3,4,0,...; 25 hops cover 5 full cycles of
  // (1+2+3+4+0)=10 each.
  EXPECT_EQ(token, 50u);
}

TEST(Stress, ManyLocalitiesManyCalls) {
  px::dist::domain_config cfg;
  cfg.num_localities = 8;
  cfg.locality_cfg.num_workers = 1;
  cfg.injection_scale = 0.0002;
  px::dist::distributed_domain dom(cfg);
  // Reuse the registered square action from other TUs is not possible —
  // keep it self-contained with ring_hop only, plus raw churn through
  // migrations of tasks... simple: hammer ring_hop fan-out.
  dom.run([](px::dist::locality& loc0) {
    std::vector<std::shared_ptr<ring_done>> flags;
    std::vector<px::agas::gid> gids;
    for (int i = 0; i < 20; ++i) {
      auto flag = std::make_shared<ring_done>();
      gids.push_back(loc0.agas().bind(flag));
      flags.push_back(flag);
      loc0.apply<&ring_hop>(static_cast<std::uint32_t>(i % 8), 16, 0,
                            gids.back());
    }
    for (auto& f : flags) f->done.wait();
    for (auto& g : gids) loc0.agas().unbind(g);
    return 0;
  });
  dom.wait_all_quiescent();
  SUCCEED();
}

TEST(Stress, NestedForEachUnderChurn) {
  px::runtime rt(wcfg(4));
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    rt.post([&total] {
      std::vector<int> v(2000, 1);
      px::parallel::for_each(px::execution::par, v.begin(), v.end(),
                             [](int& x) { x += 1; });
      total.fetch_add(
          px::parallel::reduce(px::execution::par, v.begin(), v.end(), 0L,
                               std::plus<>{}));
    });
  }
  rt.wait_quiescent();
  EXPECT_EQ(total.load(), 5L * 2000 * 2);
}

TEST(Stress, RepeatedRuntimeLifecycles) {
  // Runtimes must come and go cleanly (stack pools, timer interactions).
  for (int i = 0; i < 15; ++i) {
    px::runtime rt(wcfg(2));
    std::atomic<int> n{0};
    for (int j = 0; j < 50; ++j) rt.post([&n] { n.fetch_add(1); });
    rt.wait_quiescent();
    ASSERT_EQ(n.load(), 50) << "iteration " << i;
  }
}

}  // namespace
