// Tests pinning the machine models to the paper's Table I, including the
// derived quantities the performance models rely on.
#include <gtest/gtest.h>

#include "px/arch/machine.hpp"

namespace {

using namespace px::arch;

TEST(MachineTableI, XeonE52660v3) {
  machine m = xeon_e5_2660v3();
  EXPECT_DOUBLE_EQ(m.clock_ghz, 2.6);
  EXPECT_EQ(m.cores_per_processor, 10u);
  EXPECT_EQ(m.processors_per_node, 2u);
  EXPECT_EQ(m.threads_per_core, 2u);
  EXPECT_EQ(m.vector_bits, 256u);
  EXPECT_EQ(m.dp_flops_per_cycle, 16u);
  EXPECT_DOUBLE_EQ(m.peak_gflops, 832.0);
  // Table I consistency: 2.6 GHz x 20 cores x 16 = 832 GFLOP/s.
  EXPECT_NEAR(m.computed_peak_gflops(), m.peak_gflops, 1.0);
  EXPECT_EQ(m.total_cores(), 20u);
}

TEST(MachineTableI, Kunpeng916) {
  machine m = kunpeng916();
  EXPECT_DOUBLE_EQ(m.clock_ghz, 2.4);
  EXPECT_EQ(m.cores_per_processor, 64u);
  EXPECT_EQ(m.processors_per_node, 1u);
  EXPECT_EQ(m.threads_per_core, 1u);
  EXPECT_EQ(m.vector_bits, 128u);
  EXPECT_EQ(m.dp_flops_per_cycle, 4u);
  EXPECT_DOUBLE_EQ(m.peak_gflops, 614.0);
  EXPECT_NEAR(m.computed_peak_gflops(), m.peak_gflops, 1.0);
  EXPECT_EQ(m.numa_domains, 4u);  // behind the 32->40 / 56->64 core dips
  EXPECT_EQ(m.cores_per_domain(), 16u);
}

TEST(MachineTableI, ThunderX2) {
  machine m = thunderx2();
  EXPECT_DOUBLE_EQ(m.clock_ghz, 2.4);
  EXPECT_EQ(m.cores_per_processor, 32u);
  EXPECT_EQ(m.threads_per_core, 4u);
  EXPECT_EQ(m.vector_bits, 128u);
  EXPECT_EQ(m.dp_flops_per_cycle, 8u);
  EXPECT_DOUBLE_EQ(m.peak_gflops, 1228.0);
  // Table I's own inconsistency, reproduced deliberately: 2.4 x 32 x 8 =
  // 614.4, not 1228.8 — the paper's peak row counts both NEON pipelines /
  // sockets while the cores row lists one. We store the printed value.
  EXPECT_NEAR(m.computed_peak_gflops(), 614.4, 1.0);
  EXPECT_TRUE(m.inherent_cache_blocking);
}

TEST(MachineTableI, A64FX) {
  machine m = a64fx();
  EXPECT_DOUBLE_EQ(m.clock_ghz, 2.2);
  EXPECT_EQ(m.cores_per_processor, 48u);
  EXPECT_EQ(m.helper_cores, 4u);
  EXPECT_EQ(m.threads_per_core, 1u);
  EXPECT_EQ(m.vector_bits, 512u);
  EXPECT_EQ(m.dp_flops_per_cycle, 32u);
  EXPECT_DOUBLE_EQ(m.peak_gflops, 3379.0);
  EXPECT_NEAR(m.computed_peak_gflops(), m.peak_gflops, 1.0);
  EXPECT_EQ(m.numa_domains, 4u);  // CMGs
  EXPECT_DOUBLE_EQ(m.memory_capacity_gb, 32.0);  // HBM2, the Fig 7 limit
  EXPECT_TRUE(m.inherent_cache_blocking);
  EXPECT_EQ(m.cache_line_bytes, 256u);
}

TEST(Machine, LaneCountsMatchPipelines) {
  EXPECT_EQ(xeon_e5_2660v3().lanes(4), 8u);   // AVX2 floats
  EXPECT_EQ(xeon_e5_2660v3().lanes(8), 4u);   // AVX2 doubles
  EXPECT_EQ(kunpeng916().lanes(4), 4u);       // NEON floats
  EXPECT_EQ(thunderx2().lanes(8), 2u);        // NEON doubles
  EXPECT_EQ(a64fx().lanes(4), 16u);           // SVE-512 floats
  EXPECT_EQ(a64fx().lanes(8), 8u);            // SVE-512 doubles
}

TEST(Machine, PaperMachinesInColumnOrder) {
  auto ms = paper_machines();
  ASSERT_EQ(ms.size(), 4u);
  EXPECT_EQ(ms[0].short_name, "xeon");
  EXPECT_EQ(ms[1].short_name, "kunpeng916");
  EXPECT_EQ(ms[2].short_name, "tx2");
  EXPECT_EQ(ms[3].short_name, "a64fx");
}

TEST(Machine, LookupByName) {
  EXPECT_EQ(machine_by_name("a64fx").name, "Fujitsu (FX1000) A64FX");
  EXPECT_EQ(machine_by_name("host").short_name, "host");
  EXPECT_THROW(machine_by_name("pentium3"), std::invalid_argument);
}

TEST(Machine, HostDetection) {
  machine h = host_machine();
  EXPECT_GE(h.total_cores(), 1u);
  EXPECT_GE(h.numa_domains, 1u);
}

TEST(Machine, MemEfficiencyEncodesExplicitVectorGains) {
  // §VII-B gains: explicit >= auto everywhere; Kunpeng's gap is the
  // biggest (up to 80%), A64FX's the smallest (5-15%).
  for (auto const& m : paper_machines()) {
    EXPECT_GT(m.mem_efficiency[1], m.mem_efficiency[0]) << m.short_name;
    EXPECT_GE(m.mem_efficiency[3], m.mem_efficiency[2]) << m.short_name;
  }
  auto gain = [](machine const& m) {
    return m.mem_efficiency[1] / m.mem_efficiency[0];
  };
  EXPECT_GT(gain(kunpeng916()), 1.6);   // ~80%
  EXPECT_LT(gain(a64fx()), 1.2);        // 5-15%
  EXPECT_GT(gain(xeon_e5_2660v3()), 1.3);  // up to ~50%
  EXPECT_GT(gain(thunderx2()), 1.4);    // 50-60%
}

TEST(Machine, StreamParametersAreOrderedLikeFig2) {
  // Fig 2's saturated-node ordering: A64FX >> TX2 > Xeon ~ Kunpeng.
  EXPECT_GT(a64fx().stream_peak_gbs, thunderx2().stream_peak_gbs);
  EXPECT_GT(thunderx2().stream_peak_gbs, xeon_e5_2660v3().stream_peak_gbs);
  EXPECT_GT(thunderx2().stream_peak_gbs, kunpeng916().stream_peak_gbs);
}

}  // namespace
