// Tests for the distributed 2D Jacobi solver and the cache-blocked
// shared-memory variant.
#include <gtest/gtest.h>

#include <cmath>

#include "px/px.hpp"
#include "px/stencil/stencil.hpp"

namespace {

using namespace px::stencil;

px::dist::domain_config dcfg(std::size_t n) {
  px::dist::domain_config c;
  c.num_localities = n;
  c.locality_cfg.num_workers = 2;
  c.injection_scale = 0.001;
  return c;
}

std::vector<double> wavy_interior(std::size_t nx, std::size_t ny) {
  std::vector<double> v(nx * ny);
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      v[y * nx + x] = std::sin(0.3 * static_cast<double>(x)) *
                      std::cos(0.2 * static_cast<double>(y));
  return v;
}

class DistJacobiLocalities : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistJacobiLocalities, MatchesSerialReference) {
  std::size_t const nloc = GetParam();
  px::dist::distributed_domain dom(dcfg(nloc));
  dist_jacobi_config cfg;
  cfg.nx = 24;
  cfg.ny_total = 37;  // ragged row blocks
  cfg.steps = 15;
  auto initial = wavy_interior(cfg.nx, cfg.ny_total);
  auto result = run_distributed_jacobi2d(dom, initial, cfg);
  auto ref = reference_jacobi2d_interior(initial, cfg.nx, cfg.ny_total,
                                         cfg.steps, cfg.boundary);
  ASSERT_EQ(result.values.size(), ref.size());
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13) << nloc;
}

INSTANTIATE_TEST_SUITE_P(Localities, DistJacobiLocalities,
                         ::testing::Values(1, 2, 3, 5));

TEST(DistJacobi, SingleRowBlocks) {
  // As many localities as rows: every block is one row; all neighbours
  // are remote. The hardest halo pattern.
  px::dist::distributed_domain dom(dcfg(6));
  dist_jacobi_config cfg;
  cfg.nx = 16;
  cfg.ny_total = 6;
  cfg.steps = 10;
  auto initial = wavy_interior(cfg.nx, cfg.ny_total);
  auto result = run_distributed_jacobi2d(dom, initial, cfg);
  auto ref = reference_jacobi2d_interior(initial, cfg.nx, cfg.ny_total,
                                         cfg.steps, cfg.boundary);
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13);
}

TEST(DistJacobi, HaloTrafficScalesWithRowLength) {
  auto run_nx = [&](std::size_t nx) {
    px::dist::distributed_domain dom(dcfg(2));
    dist_jacobi_config cfg;
    cfg.nx = nx;
    cfg.ny_total = 8;
    cfg.steps = 5;
    auto initial = wavy_interior(cfg.nx, cfg.ny_total);
    auto result = run_distributed_jacobi2d(dom, initial, cfg);
    return result.halo_bytes;
  };
  auto const narrow = run_nx(16);
  auto const wide = run_nx(256);
  // Halo rows are nx doubles; the gather/scatter traffic also grows with
  // nx, so wide must be much larger.
  EXPECT_GT(wide, 4 * narrow);
}

TEST(DistJacobi, SimdBlocksMatchScalarBlocksBitwise) {
  // SIMD inside the blocks + parcels between them: results must equal the
  // scalar path bitwise (doubles, same per-element expression).
  dist_jacobi_config cfg;
  cfg.nx = 32;  // lane multiple for every plausible native width
  cfg.ny_total = 21;
  cfg.steps = 12;
  auto initial = wavy_interior(cfg.nx, cfg.ny_total);

  px::dist::distributed_domain dom_scalar(dcfg(3));
  auto scalar = run_distributed_jacobi2d(dom_scalar, initial, cfg);

  cfg.use_simd = true;
  px::dist::distributed_domain dom_simd(dcfg(3));
  auto simd = run_distributed_jacobi2d(dom_simd, initial, cfg);

  ASSERT_EQ(scalar.values.size(), simd.values.size());
  for (std::size_t i = 0; i < scalar.values.size(); ++i)
    ASSERT_EQ(scalar.values[i], simd.values[i]) << i;
}

TEST(DistJacobi, SimdFallsBackWhenRowNotLaneMultiple) {
  dist_jacobi_config cfg;
  cfg.nx = 17;  // never a lane multiple
  cfg.ny_total = 9;
  cfg.steps = 8;
  cfg.use_simd = true;
  auto initial = wavy_interior(cfg.nx, cfg.ny_total);
  px::dist::distributed_domain dom(dcfg(2));
  auto result = run_distributed_jacobi2d(dom, initial, cfg);
  auto ref = reference_jacobi2d_interior(initial, cfg.nx, cfg.ny_total,
                                         cfg.steps, cfg.boundary);
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13);
}

TEST(DistJacobi, CustomBoundaryValue) {
  px::dist::distributed_domain dom(dcfg(2));
  dist_jacobi_config cfg;
  cfg.nx = 8;
  cfg.ny_total = 8;
  cfg.steps = 400;
  cfg.boundary = -2.5;
  std::vector<double> initial(cfg.nx * cfg.ny_total, 0.0);
  auto result = run_distributed_jacobi2d(dom, initial, cfg);
  // Long runs converge to the boundary value.
  for (double v : result.values) EXPECT_NEAR(v, -2.5, 1e-3);
}

// ---- cache-blocked variant --------------------------------------------------

struct BlockedTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 3;
    return c;
  }()};
};

class BlockedBandRows : public BlockedTest,
                        public ::testing::WithParamInterface<std::size_t> {};

TEST_P(BlockedBandRows, BitwiseEqualToPlainKernel) {
  constexpr std::size_t nx = 32, ny = 23, steps = 9;
  field2d<double> p0(nx, ny), p1(nx, ny), b0(nx, ny), b1(nx, ny);
  for (auto* f : {&p0, &p1, &b0, &b1}) init_dirichlet_problem(*f);

  blocked_config bc;
  bc.band_rows = GetParam();
  px::sync_wait(rt, [&] {
    run_jacobi2d(px::execution::par, p0, p1, steps);
    run_jacobi2d_blocked(px::execution::par, b0, b1, steps, bc);
    return 0;
  });
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_EQ(p1.get(x, y), b1.get(x, y))
          << "band=" << GetParam() << " x=" << x << " y=" << y;
}

INSTANTIATE_TEST_SUITE_P(Bands, BlockedBandRows,
                         ::testing::Values(1, 2, 3, 8, 23, 100));

TEST_F(BlockedTest, BlockedWorksWithPackCells) {
  using Cell = px::simd::pack<double, 4>;
  constexpr std::size_t nx = 32, ny = 12, steps = 7;
  field2d<Cell> b0(nx, ny), b1(nx, ny);
  field2d<double> r0(nx, ny), r1(nx, ny);
  for (auto* f : {&r0, &r1}) init_dirichlet_problem(*f);
  init_dirichlet_problem(b0);
  init_dirichlet_problem(b1);
  px::sync_wait(rt, [&] {
    run_jacobi2d_blocked(px::execution::par, b0, b1, steps);
    run_jacobi2d(px::execution::par, r0, r1, steps);
    return 0;
  });
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_EQ(b1.get(x, y), r1.get(x, y));
}

TEST_F(BlockedTest, DerivedBandRowsRespectCacheBudget) {
  field2d<double> f(1024, 8);
  blocked_config bc;
  bc.cache_bytes = 64 * 1024;
  std::size_t const rows = derive_band_rows(f, bc);
  EXPECT_GE(rows, 2u);
  // 4 rows x row bytes must fit the budget (or be clamped to minimum 2).
  if (rows > 2)
    EXPECT_LE(4 * rows * f.row_stride() * sizeof(double), bc.cache_bytes);
}

}  // namespace
