// End-to-end integration tests combining runtime, LCOs, parallel
// algorithms, SIMD kernels and the distributed layer — the full stack the
// paper's benchmarks exercise.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "px/px.hpp"
#include "px/simd/simd.hpp"
#include "px/stencil/stencil.hpp"

namespace {

long fib_action(px::dist::locality& here, int n);

}  // namespace

// Recursive remote fan-out: locality L computes fib(n) by delegating the
// two subproblems to (L+1) % size and itself.
namespace {
long fib_action(px::dist::locality& here, int n) {
  if (n < 2) return n;
  auto next = static_cast<std::uint32_t>((here.id() + 1) %
                                         here.domain().size());
  auto a = here.call<&fib_action>(next, n - 1);
  auto b = here.call<&fib_action>(here.id(), n - 2);
  return a.get() + b.get();
}
}  // namespace
PX_REGISTER_ACTION(fib_action)

namespace {

TEST(Integration, FutureFanOutFanIn) {
  px::scheduler_config c;
  c.num_workers = 4;
  px::runtime rt(c);
  // Tree of async tasks: sum of 1..256 via recursive splitting.
  std::function<long(long, long)> sum_range = [&](long lo, long hi) -> long {
    if (hi - lo <= 16) {
      long s = 0;
      for (long i = lo; i < hi; ++i) s += i;
      return s;
    }
    long mid = lo + (hi - lo) / 2;
    auto left = px::async([&, lo, mid] { return sum_range(lo, mid); });
    long right = sum_range(mid, hi);
    return left.get() + right;
  };
  long total = px::sync_wait(rt, [&] { return sum_range(1, 257); });
  EXPECT_EQ(total, 256L * 257 / 2);
}

TEST(Integration, PipelineWithChannelsAndSimd) {
  // Stage 1 produces rows, stage 2 squares them with packs, stage 3 sums.
  px::scheduler_config c;
  c.num_workers = 3;
  px::runtime rt(c);
  using pk = px::simd::pack<double, 4>;
  px::channel<std::vector<double>> raw, squared;
  constexpr int rows = 32, row_len = 64;

  rt.post([&] {
    for (int r = 0; r < rows; ++r)
      raw.send(std::vector<double>(row_len, static_cast<double>(r)));
  });
  rt.post([&] {
    for (int r = 0; r < rows; ++r) {
      auto row = raw.get();
      for (std::size_t i = 0; i < row.size(); i += pk::width) {
        pk v = px::simd::load_unaligned<pk>(row.data() + i);
        px::simd::store_unaligned(row.data() + i, v * v);
      }
      squared.send(std::move(row));
    }
  });
  auto total = px::async_on(rt, [&] {
    double s = 0;
    for (int r = 0; r < rows; ++r) {
      auto row = squared.get();
      s += std::accumulate(row.begin(), row.end(), 0.0);
    }
    return s;
  });
  double expect = 0;
  for (int r = 0; r < rows; ++r) expect += row_len * double(r) * double(r);
  EXPECT_DOUBLE_EQ(total.get(), expect);
}

TEST(Integration, RemoteRecursionAcrossLocalities) {
  px::dist::domain_config cfg;
  cfg.num_localities = 3;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  px::dist::distributed_domain dom(cfg);
  long const fib10 = dom.run([](px::dist::locality& loc0) {
    return fib_action(loc0, 10);
  });
  EXPECT_EQ(fib10, 55);
}

TEST(Integration, JacobiOnBlockExecutorMatchesReference) {
  // The paper's NUMA setup: block executor + 2 virtual NUMA domains.
  px::scheduler_config c;
  c.num_workers = 4;
  c.numa_domains = 2;
  px::runtime rt(c);
  px::block_executor ex(rt.sched());
  auto policy = px::execution::par.on(ex);

  using namespace px::stencil;
  constexpr std::size_t nx = 32, ny = 16, steps = 12;
  field2d<double> u0(nx, ny), u1(nx, ny);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);
  px::sync_wait(rt, [&] {
    return run_jacobi2d(policy, u0, u1, steps);
  });

  field2d<double> r0(nx, ny), r1(nx, ny);
  init_dirichlet_problem(r0);
  init_dirichlet_problem(r1);
  run_jacobi2d(px::execution::seq, r0, r1, steps);
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_EQ(u0.get(x, y), r0.get(x, y));
}

TEST(Integration, HeatSolversAgreeSharedVsDistributed) {
  // The same problem through both implementations (Listing 1 vs the
  // parcel-based solver) gives identical answers.
  auto initial = px::stencil::heat1d_sine_initial(600);
  constexpr std::size_t steps = 20;

  px::scheduler_config c;
  c.num_workers = 2;
  px::runtime rt(c);
  px::stencil::heat1d_config hc;
  hc.steps = steps;
  auto shared = px::sync_wait(rt, [&] {
    return px::stencil::run_heat1d(px::execution::par, initial, hc);
  });

  px::dist::domain_config dc;
  dc.num_localities = 3;
  dc.locality_cfg.num_workers = 2;
  dc.injection_scale = 0.001;
  px::dist::distributed_domain dom(dc);
  px::stencil::dist_heat_config dhc;
  dhc.steps = steps;
  auto distributed = px::stencil::run_distributed_heat1d(dom, initial, dhc);

  EXPECT_LT(px::stencil::max_abs_diff(shared.values, distributed.values),
            1e-15);
}

TEST(Integration, DataflowDrivenStencilSteps) {
  // Time steps chained by dataflow instead of a loop: step t+1 depends on
  // the future of step t — a pure ParalleX formulation.
  px::scheduler_config c;
  c.num_workers = 3;
  px::runtime rt(c);
  auto initial = px::stencil::heat1d_sine_initial(300);
  double const k = 0.25;

  auto result = px::sync_wait(rt, [&] {
    auto step = [k](std::vector<double> u) {
      std::vector<double> next(u.size());
      next.front() = u.front();
      next.back() = u.back();
      for (std::size_t x = 1; x + 1 < u.size(); ++x)
        next[x] = u[x] + k * (u[x - 1] - 2.0 * u[x] + u[x + 1]);
      return next;
    };
    auto fut = px::make_ready_future(initial);
    for (int t = 0; t < 15; ++t)
      fut = fut.then([step](px::future<std::vector<double>> prev) {
        return step(prev.get());
      });
    return fut.get();
  });
  auto ref = px::stencil::reference_heat1d(initial, 15, k);
  EXPECT_LT(px::stencil::max_abs_diff(result, ref), 1e-15);
}

TEST(Integration, StressManySmallTasksWithSuspensions) {
  px::scheduler_config c;
  c.num_workers = 4;
  px::runtime rt(c);
  std::atomic<long> completed{0};
  px::counting_semaphore sem(8);
  for (int i = 0; i < 2000; ++i)
    rt.post([&] {
      sem.acquire();
      if (completed.load() % 64 == 0) px::this_task::yield();
      sem.release();
      completed.fetch_add(1);
    });
  rt.wait_quiescent();
  EXPECT_EQ(completed.load(), 2000);
}

}  // namespace
