// Tests for the Chase-Lev work-stealing deque: single-owner semantics,
// LIFO pop / FIFO steal ordering, growth, and a multi-thief stress test
// checking that every pushed item is claimed exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "px/runtime/ws_deque.hpp"

namespace {

TEST(WsDeque, EmptyPopAndStealReturnNull) {
  px::rt::ws_deque<int> dq;
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WsDeque, OwnerPopIsLifo) {
  px::rt::ws_deque<int> dq;
  int a = 1, b = 2, c = 3;
  dq.push(&a);
  dq.push(&b);
  dq.push(&c);
  EXPECT_EQ(dq.pop(), &c);
  EXPECT_EQ(dq.pop(), &b);
  EXPECT_EQ(dq.pop(), &a);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WsDeque, StealIsFifo) {
  px::rt::ws_deque<int> dq;
  int a = 1, b = 2, c = 3;
  dq.push(&a);
  dq.push(&b);
  dq.push(&c);
  EXPECT_EQ(dq.steal(), &a);
  EXPECT_EQ(dq.steal(), &b);
  EXPECT_EQ(dq.steal(), &c);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WsDeque, MixedPopAndSteal) {
  px::rt::ws_deque<int> dq;
  int v[4] = {0, 1, 2, 3};
  for (auto& x : v) dq.push(&x);
  EXPECT_EQ(dq.steal(), &v[0]);
  EXPECT_EQ(dq.pop(), &v[3]);
  EXPECT_EQ(dq.steal(), &v[1]);
  EXPECT_EQ(dq.pop(), &v[2]);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  px::rt::ws_deque<int> dq(4);
  std::vector<int> vals(1000);
  for (auto& v : vals) dq.push(&v);
  EXPECT_EQ(dq.size_estimate(), 1000);
  for (int i = 999; i >= 0; --i) ASSERT_EQ(dq.pop(), &vals[i]);
}

TEST(WsDeque, SizeEstimate) {
  px::rt::ws_deque<int> dq;
  int a = 0;
  EXPECT_EQ(dq.size_estimate(), 0);
  dq.push(&a);
  dq.push(&a);
  EXPECT_EQ(dq.size_estimate(), 2);
  (void)dq.pop();
  EXPECT_EQ(dq.size_estimate(), 1);
}

// Concurrency stress: one owner pushing/popping, several thieves stealing.
// Every element must be claimed exactly once across all parties.
TEST(WsDeque, ConcurrentStealStress) {
  constexpr int n_items = 50000;
  constexpr int n_thieves = 3;
  px::rt::ws_deque<int> dq(64);
  std::vector<int> items(n_items);
  for (int i = 0; i < n_items; ++i) items[i] = i;

  std::vector<std::atomic<int>> claimed(n_items);
  for (auto& c : claimed) c.store(0);

  std::atomic<bool> done{false};
  std::atomic<long> stolen{0}, popped{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < n_thieves; ++t)
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* p = dq.steal()) {
          claimed[*p].fetch_add(1);
          stolen.fetch_add(1);
        }
      }
      // Final drain after the owner finished.
      while (int* p = dq.steal()) {
        claimed[*p].fetch_add(1);
        stolen.fetch_add(1);
      }
    });

  // Owner: push all, popping a few along the way.
  for (int i = 0; i < n_items; ++i) {
    dq.push(&items[i]);
    if (i % 7 == 0) {
      if (int* p = dq.pop()) {
        claimed[*p].fetch_add(1);
        popped.fetch_add(1);
      }
    }
  }
  while (int* p = dq.pop()) {
    claimed[*p].fetch_add(1);
    popped.fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(stolen.load() + popped.load(), n_items);
  for (int i = 0; i < n_items; ++i)
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
}

// ---- batched stealing ("steal half") --------------------------------------

TEST(WsDequeBatch, TakesHalfRoundedUpInFifoOrder) {
  px::rt::ws_deque<int> dq;
  int v[8];
  for (auto& x : v) dq.push(&x);
  int* out[8];
  std::size_t const n = dq.steal_batch(out, 8);
  ASSERT_EQ(n, 4u);  // (8 + 1) / 2
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(out[i], &v[i]);  // oldest first, same order as steal()
  EXPECT_EQ(dq.size_estimate(), 4);
  // The owner's end is untouched: LIFO pop still sees the newest item.
  EXPECT_EQ(dq.pop(), &v[7]);
}

TEST(WsDequeBatch, RespectsCallerCapAndOddCounts) {
  px::rt::ws_deque<int> dq;
  int v[5];
  for (auto& x : v) dq.push(&x);
  int* out[8];
  EXPECT_EQ(dq.steal_batch(out, 2), 2u);  // cap < half: cap wins
  EXPECT_EQ(out[0], &v[0]);
  EXPECT_EQ(out[1], &v[1]);
  EXPECT_EQ(dq.steal_batch(out, 8), 2u);  // 3 left -> (3 + 1) / 2
  EXPECT_EQ(dq.steal_batch(out, 0), 0u);
  // Single element: a batch degrades to a plain steal.
  EXPECT_EQ(dq.steal_batch(out, 8), 1u);
  EXPECT_EQ(out[0], &v[4]);
  EXPECT_EQ(dq.steal_batch(out, 8), 0u);  // empty
}

// Conservation under concurrency: batch-stealing thieves racing an owner
// that pushes and pops. Every item claimed exactly once, across single
// steals inside batches, growth, and owner pops.
TEST(WsDequeBatch, ConcurrentBatchStealStress) {
  constexpr int n_items = 50000;
  constexpr int n_thieves = 3;
  px::rt::ws_deque<int> dq(64);
  std::vector<int> items(n_items);
  for (int i = 0; i < n_items; ++i) items[i] = i;

  std::vector<std::atomic<int>> claimed(n_items);
  for (auto& c : claimed) c.store(0);

  std::atomic<bool> done{false};
  std::atomic<long> stolen{0}, popped{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < n_thieves; ++t)
    thieves.emplace_back([&] {
      int* batch[16];
      auto drain_batch = [&] {
        std::size_t const k = dq.steal_batch(batch, 16);
        for (std::size_t i = 0; i < k; ++i) claimed[*batch[i]].fetch_add(1);
        stolen.fetch_add(static_cast<long>(k));
        return k;
      };
      while (!done.load(std::memory_order_acquire)) drain_batch();
      while (drain_batch() > 0) {
      }
    });

  for (int i = 0; i < n_items; ++i) {
    dq.push(&items[i]);
    if (i % 7 == 0) {
      if (int* p = dq.pop()) {
        claimed[*p].fetch_add(1);
        popped.fetch_add(1);
      }
    }
  }
  while (int* p = dq.pop()) {
    claimed[*p].fetch_add(1);
    popped.fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(stolen.load() + popped.load(), n_items);
  for (int i = 0; i < n_items; ++i)
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
}

}  // namespace
