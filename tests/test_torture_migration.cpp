// Migration torture: seed-swept random migration tours and the rebalanced
// heat solver under a lossy, coalescing fabric (drop/dup/reorder whole
// envelopes). Pins the tentpole's safety properties:
//   (a) exactly one resident copy per GID at quiesce — the domain's
//       "agas-single-residence" invariant, evaluated by wait_all_quiescent
//       via px::torture's invariant registry, plus an explicit cross-
//       locality census here;
//   (b) forwarding chains converge — every object stays reachable through
//       its original GID within the hop budget after arbitrary tours;
//   (c) the zipf-skewed heat solver is bitwise identical to a clean,
//       migration-free run even with the rebalancer actively migrating
//       partitions mid-solve under faults + coalescing.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "px/dist/migration.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_rebalance.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/invariant.hpp"

namespace {

struct tour_cell {
  std::uint64_t tag = 0;
  std::uint64_t hops = 0;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& tag& hops;
  }
};

px::agas::gid tmig_make(px::dist::locality& here, std::uint64_t tag) {
  auto cell = std::make_shared<tour_cell>();
  cell->tag = tag;
  return here.agas().bind(std::move(cell));
}

// Component-addressed (call_component): runs wherever the object lives.
std::uint64_t tmig_read(px::dist::locality& here, px::agas::gid g) {
  auto cell = here.agas().resolve<tour_cell>(g);
  if (cell == nullptr) throw std::runtime_error("tour_cell not resident");
  return cell->tag;
}

px::agas::gid tmig_hop(px::dist::locality& here, px::agas::gid g,
                       std::uint32_t dest) {
  auto moved = px::dist::migrate<tour_cell>(here, g, dest).get();
  return moved;
}

int tmig_contains(px::dist::locality& here, px::agas::gid g) {
  return here.agas().contains(g) ? 1 : 0;
}

}  // namespace

PX_REGISTER_ACTION(tmig_make)
PX_REGISTER_ACTION(tmig_read)
PX_REGISTER_ACTION(tmig_hop)
PX_REGISTER_ACTION(tmig_contains)
PX_REGISTER_MIGRATABLE(tour_cell)

namespace {

namespace torture = px::torture;
using namespace std::chrono_literals;

constexpr std::size_t tour_localities = 4;

px::dist::domain_config lossy_migration_cfg(std::uint64_t seed) {
  px::dist::domain_config cfg;
  cfg.num_localities = tour_localities;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.15;
  cfg.faults.duplicate = 0.05;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = static_cast<std::uint32_t>(seed ^ (seed >> 32));
  cfg.reliability.initial_backoff_us = 5.0;
  cfg.reliability.backoff_multiplier = 1.5;
  cfg.reliability.max_backoff_us = 100.0;
  cfg.reliability.max_retries = 64;
  cfg.coalescing.enabled = true;
  cfg.coalescing.compress = true;
  cfg.coalescing.max_parcels = 8;
  cfg.coalescing.flush_delay_us = 20.0;
  return cfg;
}

torture::forall_options migration_opts(char const* stem) {
  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.4;
  opts.perturb.max_sleep_us = 100;
  opts.dump_stem = stem;
  return opts;
}

void fail_quiesce(std::unique_ptr<px::dist::distributed_domain> dom,
                  char const* what) {
  dom->detach_invariants();
  auto const leaked = dom->obligations_in_flight();
  (void)dom.release();  // corrupted: destructor would hang
  throw torture::invariant_violation(
      {{"obligation-balance",
        std::to_string(leaked) + " obligation(s) in flight " + what}});
}

// (a) + (b): random concurrent migration tours. Each object takes a
// seed-chosen walk over the cluster (departures run at the object's
// current residence via call_component, so a stale driver view is itself
// part of the test), interleaved with reads through the original GID.
// At quiesce: the single-residence/tombstone-convergence invariant runs,
// then an explicit census confirms exactly one copy per GID, and every
// object is still reachable by a cold caller within the hop budget.
TEST(TortureMigration, RandomToursKeepOneResidentCopyUnderSeeds) {
  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [](std::uint64_t seed) {
        auto dom = std::make_unique<px::dist::distributed_domain>(
            lossy_migration_cfg(seed));
        constexpr std::size_t objects = 6;
        constexpr std::size_t hops_per_object = 4;
        std::vector<px::agas::gid> gids(objects);
        dom->run([&](px::dist::locality& loc0) {
          std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
          std::uniform_int_distribution<std::uint32_t> pick(
              0, tour_localities - 1);
          for (std::size_t i = 0; i < objects; ++i)
            gids[i] = loc0.call<&tmig_make>(pick(rng), i + 1).get();

          // Interleaved tours: kick one hop per object, read through the
          // original GID while chains are hot, repeat.
          for (std::size_t h = 0; h < hops_per_object; ++h) {
            std::vector<px::future<px::agas::gid>> hops;
            hops.reserve(objects);
            for (std::size_t i = 0; i < objects; ++i)
              hops.push_back(loc0.call_component<&tmig_hop>(
                  gids[i], pick(rng)));
            for (std::size_t i = 0; i < objects; ++i) {
              try {
                (void)hops[i].get();
              } catch (std::runtime_error const&) {
                // A lost departure rolled back, or two hops raced: either
                // way the object must still exist exactly once — that is
                // what the census below asserts.
              }
              if (loc0.call_component<&tmig_read>(gids[i]).get() != i + 1)
                throw std::runtime_error(
                    "object lost its state mid-tour (gid " +
                    gids[i].to_string() + ")");
            }
          }
          return 0;
        });
        if (!dom->wait_all_quiescent_for(30s))
          fail_quiesce(std::move(dom), "after migration tours");

        // Census + convergence from a cold perspective.
        dom->run([&](px::dist::locality& loc0) {
          for (std::size_t i = 0; i < objects; ++i) {
            int residents = 0;
            for (std::uint32_t l = 0; l < tour_localities; ++l)
              residents += loc0.call<&tmig_contains>(l, gids[i]).get();
            if (residents != 1)
              throw std::runtime_error(
                  "expected exactly 1 resident copy, found " +
                  std::to_string(residents) + " (gid " +
                  gids[i].to_string() + ")");
            if (loc0.call_component<&tmig_read>(gids[i]).get() != i + 1)
              throw std::runtime_error("post-quiesce read failed");
          }
          return 0;
        });
        if (!dom->wait_all_quiescent_for(30s))
          fail_quiesce(std::move(dom), "after census");
      },
      migration_opts("torture-migration-tours"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

// (c): the rebalancer migrates live solver partitions mid-run under a
// lossy coalescing fabric, and the answer must not wobble by a single bit
// against a clean static-placement run.
TEST(TortureMigration, RebalancedHeatBitwiseEqualsStaticUnderSeeds) {
  auto const initial = px::stencil::heat1d_sine_initial(240);
  px::stencil::skewed_heat_config hc;
  hc.partitions = 8;
  hc.steps = 24;
  hc.steps_per_round = 6;
  hc.zipf_s = 1.1;

  // Baseline: clean fabric, rebalancer off — no migration anywhere.
  px::dist::domain_config clean = lossy_migration_cfg(0);
  clean.faults = {};
  clean.coalescing = {};
  clean.injection_scale = 0.0;
  px::stencil::skewed_heat_config static_cfg = hc;
  static_cfg.rebalance = false;
  px::dist::distributed_domain clean_dom(clean);
  auto const baseline = run_skewed_heat1d(clean_dom, initial, static_cfg);
  clean_dom.wait_all_quiescent();
  ASSERT_EQ(baseline.migrations, 0u);
  ASSERT_EQ(baseline.values.size(), initial.size());

  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [&](std::uint64_t seed) {
        px::dist::distributed_domain dom(lossy_migration_cfg(seed));
        if (!dom.reliable() || !dom.coalescing())
          throw std::runtime_error("domain lost reliability or coalescing");
        auto const out = run_skewed_heat1d(dom, initial, hc);
        dom.wait_all_quiescent();
        if (out.migrations == 0)
          throw std::runtime_error(
              "rebalancer moved nothing — the skew was supposed to "
              "trigger it");
        if (out.values.size() != baseline.values.size() ||
            !(out.values == baseline.values))
          throw std::runtime_error(
              "rebalanced lossy heat1d diverged bitwise from the "
              "static fault-free run");
      },
      migration_opts("torture-migration-heat"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
