// Tests for future/promise/shared_future/packaged_task and `then`
// continuations, from both external threads and px tasks.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "px/lcos/async.hpp"
#include "px/lcos/future.hpp"

namespace {

struct RuntimeFixture : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 3;
    return c;
  }()};
};

TEST_F(RuntimeFixture, PromiseDeliversValue) {
  px::promise<int> p;
  auto f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.is_ready());
  p.set_value(42);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 42);
  EXPECT_FALSE(f.valid());  // get consumes
}

TEST_F(RuntimeFixture, PromiseDeliversException) {
  px::promise<int> p;
  auto f = p.get_future();
  p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_TRUE(f.has_exception());
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(RuntimeFixture, BrokenPromiseReported) {
  px::future<int> f;
  {
    px::promise<int> p;
    f = p.get_future();
  }
  EXPECT_TRUE(f.is_ready());
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(RuntimeFixture, VoidFuture) {
  px::promise<void> p;
  auto f = p.get_future();
  p.set_value();
  EXPECT_NO_THROW(f.get());
}

TEST_F(RuntimeFixture, MoveOnlyValueType) {
  px::promise<std::unique_ptr<int>> p;
  auto f = p.get_future();
  p.set_value(std::make_unique<int>(9));
  auto v = f.get();
  EXPECT_EQ(*v, 9);
}

TEST_F(RuntimeFixture, MakeReadyFuture) {
  auto f = px::make_ready_future(std::string("hi"));
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), "hi");
  auto v = px::make_ready_future();
  EXPECT_TRUE(v.is_ready());
}

TEST_F(RuntimeFixture, MakeExceptionalFuture) {
  auto f = px::make_exceptional_future<int>(
      std::make_exception_ptr(std::logic_error("x")));
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(RuntimeFixture, ExternalThreadBlocksOnGet) {
  px::promise<int> p;
  auto f = p.get_future();
  rt.post([&p] {
    px::this_task::sleep_for(std::chrono::milliseconds(20));
    p.set_value(5);
  });
  EXPECT_EQ(f.get(), 5);  // main thread blocks until the task fulfils
}

TEST_F(RuntimeFixture, TaskSuspendsOnGet) {
  auto result = px::sync_wait(rt, [] {
    px::promise<int> p;
    auto f = p.get_future();
    px::post([&p] {
      px::this_task::sleep_for(std::chrono::milliseconds(10));
      p.set_value(7);
    });
    return f.get();  // suspends this fiber, frees the worker
  });
  EXPECT_EQ(result, 7);
}

TEST_F(RuntimeFixture, ThenChainsValue) {
  auto result = px::sync_wait(rt, [] {
    auto f = px::async([] { return 10; });
    auto g = f.then([](px::future<int> x) { return x.get() * 2; });
    auto h = g.then([](px::future<int> x) { return x.get() + 2; });
    return h.get();
  });
  EXPECT_EQ(result, 22);
}

TEST_F(RuntimeFixture, ThenOnReadyFutureStillRuns) {
  auto result = px::sync_wait(rt, [] {
    auto f = px::make_ready_future(3);
    return f.then([](px::future<int> x) { return x.get() + 4; }).get();
  });
  EXPECT_EQ(result, 7);
}

TEST_F(RuntimeFixture, ThenPropagatesException) {
  auto threw = px::sync_wait(rt, [] {
    auto f = px::async([]() -> int { throw std::runtime_error("inner"); });
    auto g = f.then([](px::future<int> x) {
      try {
        x.get();
        return false;
      } catch (std::runtime_error const&) {
        return true;
      }
    });
    return g.get();
  });
  EXPECT_TRUE(threw);
}

TEST_F(RuntimeFixture, SharedFutureMultipleGets) {
  px::promise<int> p;
  px::shared_future<int> sf = p.get_future().share();
  p.set_value(11);
  EXPECT_EQ(sf.get(), 11);
  EXPECT_EQ(sf.get(), 11);
  auto sf2 = sf;  // copies share state
  EXPECT_EQ(sf2.get(), 11);
}

TEST_F(RuntimeFixture, PackagedTaskDeliversResult) {
  px::packaged_task<int(int, int)> task([](int a, int b) { return a + b; });
  auto f = task.get_future();
  task(20, 22);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(RuntimeFixture, PackagedTaskDeliversException) {
  px::packaged_task<int()> task([]() -> int { throw std::domain_error("d"); });
  auto f = task.get_future();
  task();
  EXPECT_THROW(f.get(), std::domain_error);
}

TEST_F(RuntimeFixture, ManyWaitersOnOneState) {
  px::promise<int> p;
  px::shared_future<int> sf = p.get_future().share();
  std::atomic<int> sum{0};
  for (int i = 0; i < 50; ++i)
    rt.post([sf, &sum] { sum.fetch_add(sf.get()); });
  rt.post([&p] {
    px::this_task::sleep_for(std::chrono::milliseconds(15));
    p.set_value(2);
  });
  rt.wait_quiescent();
  EXPECT_EQ(sum.load(), 100);
}

}  // namespace
