// The suite CLI layer on top of the px::bench reporter: argument parsing,
// smoke-lane iteration scaling, and the process exit-code contract of
// finalize_suite (0 pass / 1 regression / 2 usage-or-IO error) that
// scripts/bench.sh and the CI smoke lane rely on. Lives in its own binary
// because it links px_bench_common, which only exists when PX_BUILD_BENCH
// is on (tests/CMakeLists.txt guards the registration).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace px::bench;

std::optional<suite_cli> parse(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "px_bench_suite");
  std::vector<char*> argv;
  argv.reserve(argv_strings.size());
  for (auto& s : argv_strings) argv.push_back(s.data());
  return parse_suite_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCli, ParsesAllFlags) {
  auto cli = parse({"--out", "/tmp/r.json", "--compare", "/tmp/b.json",
                    "--threshold", "12.5", "--smoke"});
  ASSERT_TRUE(cli.has_value());
  EXPECT_EQ(cli->out, "/tmp/r.json");
  EXPECT_EQ(cli->compare_baseline, "/tmp/b.json");
  EXPECT_DOUBLE_EQ(cli->threshold_pct, 12.5);
  EXPECT_TRUE(cli->smoke);
}

TEST(BenchCli, DefaultsAndMalformedArguments) {
  auto cli = parse({});
  ASSERT_TRUE(cli.has_value());
  EXPECT_TRUE(cli->out.empty());
  EXPECT_TRUE(cli->compare_baseline.empty());
  EXPECT_DOUBLE_EQ(cli->threshold_pct, 5.0);
  EXPECT_FALSE(cli->smoke);

  EXPECT_FALSE(parse({"--out"}).has_value());        // missing operand
  EXPECT_FALSE(parse({"--threshold", "abc"}).has_value());
  EXPECT_FALSE(parse({"--no-such-flag"}).has_value());
}

TEST(BenchCli, SmokeScalingHasFloorOfOne) {
  suite_cli cli;
  cli.smoke = true;
  EXPECT_EQ(cli.scaled(1600), 100u);
  EXPECT_EQ(cli.scaled(8), 1u);  // never scales to zero iterations
  cli.smoke = false;
  EXPECT_EQ(cli.scaled(1600), 1600u);
}

runner make_runner(double scale) {
  runner_options opts;
  opts.reps = 1;
  opts.warmup = 0;
  opts.run_seed = 42;
  opts.verbose = false;
  runner r(opts);
  // Workload duration scales with `scale` so a "current" runner can be
  // made measurably slower than a recorded baseline.
  std::uint64_t const spins = static_cast<std::uint64_t>(20000.0 * scale);
  r.run("cli.case", {}, 4, [spins](std::uint64_t iters) {
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < iters * spins; ++i) sink = sink + i;
  });
  return r;
}

TEST(BenchCli, ExitCodesPassRegressionAndIoError) {
  std::string const baseline_path = "/tmp/px_bench_cli_baseline.json";
  std::string const out_path = "/tmp/px_bench_cli_out.json";

  // Record a baseline via the normal write path: exit 0, file readable.
  {
    runner base = make_runner(1.0);
    suite_cli cli;
    cli.out = baseline_path;
    EXPECT_EQ(finalize_suite(base, cli), 0);
    EXPECT_NO_THROW((void)load_report_file(baseline_path));
  }

  // Self-comparison of an equal-speed run passes (exit 0) and still
  // writes the requested report.
  {
    runner same = make_runner(1.0);
    suite_cli cli;
    cli.out = out_path;
    cli.compare_baseline = baseline_path;
    cli.threshold_pct = 400.0;  // generous: this is an exit-code test
    EXPECT_EQ(finalize_suite(same, cli), 0);
    EXPECT_NO_THROW((void)load_report_file(out_path));
  }

  // A grossly slower run against a tight threshold is a regression: exit 1.
  {
    runner slow = make_runner(25.0);
    suite_cli cli;
    cli.compare_baseline = baseline_path;
    cli.threshold_pct = 5.0;
    EXPECT_EQ(finalize_suite(slow, cli), 1);
  }

  // Unreadable baseline / unwritable report: exit 2.
  {
    runner r = make_runner(1.0);
    suite_cli cli;
    cli.compare_baseline = "/tmp/px_bench_cli_no_such_baseline.json";
    EXPECT_EQ(finalize_suite(r, cli), 2);
  }
  {
    runner r = make_runner(1.0);
    suite_cli cli;
    cli.out = "/tmp/px_no_such_dir_for_bench/out.json";
    EXPECT_EQ(finalize_suite(r, cli), 2);
  }

  std::remove(baseline_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
