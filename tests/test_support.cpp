// Tests for px/support: aligned allocation, math helpers, RNG, env parsing,
// unique_function, spinlock, timer, topology.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "px/support/affinity.hpp"
#include "px/support/aligned.hpp"
#include "px/support/env.hpp"
#include "px/support/math.hpp"
#include "px/support/random.hpp"
#include "px/support/spin.hpp"
#include "px/support/timer.hpp"
#include "px/support/topology.hpp"
#include "px/support/unique_function.hpp"

namespace {

TEST(Aligned, RawAllocationRespectsAlignment) {
  for (std::size_t align : {8u, 16u, 64u, 256u, 4096u}) {
    void* p = px::aligned_alloc_bytes(100, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
    px::aligned_free(p);
  }
}

TEST(Aligned, ZeroBytesStillReturnsUsablePointer) {
  void* p = px::aligned_alloc_bytes(0, 64);
  ASSERT_NE(p, nullptr);
  px::aligned_free(p);
}

TEST(Aligned, AllocatorWorksWithVector) {
  std::vector<double, px::aligned_allocator<double, 64>> v(1000, 1.5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  EXPECT_DOUBLE_EQ(v[999], 1.5);
}

TEST(Aligned, AllocatorEquality) {
  px::aligned_allocator<int, 64> a, b;
  EXPECT_TRUE(a == b);
}

TEST(Aligned, RebindPreservesUsableAlignment) {
  using A = px::aligned_allocator<char, 8>;
  using B = A::rebind<double>::other;
  static_assert(B::alignment >= alignof(double));
  SUCCEED();
}

TEST(Math, DivCeil) {
  EXPECT_EQ(px::div_ceil(10, 3), 4);
  EXPECT_EQ(px::div_ceil(9, 3), 3);
  EXPECT_EQ(px::div_ceil(1, 5), 1);
  EXPECT_EQ(px::div_ceil(0, 5), 0);
}

TEST(Math, RoundUpDown) {
  EXPECT_EQ(px::round_up(13, 8), 16);
  EXPECT_EQ(px::round_up(16, 8), 16);
  EXPECT_EQ(px::round_down(13, 8), 8);
  EXPECT_EQ(px::round_down(16, 8), 16);
}

TEST(Math, PowerOfTwo) {
  EXPECT_TRUE(px::is_power_of_two(1));
  EXPECT_TRUE(px::is_power_of_two(64));
  EXPECT_FALSE(px::is_power_of_two(0));
  EXPECT_FALSE(px::is_power_of_two(48));
  EXPECT_EQ(px::floor_pow2(1), 1u);
  EXPECT_EQ(px::floor_pow2(63), 32u);
  EXPECT_EQ(px::floor_pow2(64), 64u);
}

TEST(Random, DeterministicForSeed) {
  px::xoshiro256ss a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer) {
  px::xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Random, BelowIsInRange) {
  px::xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Random, BelowCoversRange) {
  px::xoshiro256ss rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, UniformInUnitInterval) {
  px::xoshiro256ss rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Env, ParsesSizes) {
  ::setenv("PX_TEST_SIZE", "12345", 1);
  EXPECT_EQ(px::env_size("PX_TEST_SIZE"), 12345u);
  ::setenv("PX_TEST_SIZE", "junk", 1);
  EXPECT_FALSE(px::env_size("PX_TEST_SIZE").has_value());
  ::unsetenv("PX_TEST_SIZE");
  EXPECT_FALSE(px::env_size("PX_TEST_SIZE").has_value());
}

TEST(Env, ParsesU64InAnyBase) {
  ::setenv("PX_TEST_U64", "0xdeadbeefcafe", 1);
  EXPECT_EQ(px::env_u64("PX_TEST_U64"), 0xdeadbeefcafeull);
  ::setenv("PX_TEST_U64", "12345", 1);
  EXPECT_EQ(px::env_u64("PX_TEST_U64"), 12345u);
  ::setenv("PX_TEST_U64", "0x", 1);
  EXPECT_FALSE(px::env_u64("PX_TEST_U64").has_value());
  ::unsetenv("PX_TEST_U64");
  EXPECT_FALSE(px::env_u64("PX_TEST_U64").has_value());
}

TEST(Env, RejectsTrailingGarbage) {
  // "123abc" silently parsing as 123 is exactly the trap the strict
  // end-pointer check exists to close: a typo'd knob must fall back to the
  // documented default (nullopt here), not to a half-parsed value.
  ::setenv("PX_TEST_TRAIL", "123abc", 1);
  EXPECT_FALSE(px::env_size("PX_TEST_TRAIL").has_value());
  EXPECT_FALSE(px::env_u64("PX_TEST_TRAIL").has_value());
  EXPECT_FALSE(px::env_double("PX_TEST_TRAIL").has_value());
  ::setenv("PX_TEST_TRAIL", "64k", 1);
  EXPECT_FALSE(px::env_size("PX_TEST_TRAIL").has_value());
  ::setenv("PX_TEST_TRAIL", "12 ", 1);  // even trailing whitespace
  EXPECT_FALSE(px::env_u64("PX_TEST_TRAIL").has_value());
  ::setenv("PX_TEST_TRAIL", "1.5x", 1);
  EXPECT_FALSE(px::env_double("PX_TEST_TRAIL").has_value());
  // Exact parses still succeed.
  ::setenv("PX_TEST_TRAIL", "123", 1);
  EXPECT_EQ(px::env_size("PX_TEST_TRAIL"), 123u);
  ::unsetenv("PX_TEST_TRAIL");
}

TEST(Env, ParsesBools) {
  ::setenv("PX_TEST_BOOL", "yes", 1);
  EXPECT_EQ(px::env_bool("PX_TEST_BOOL"), true);
  ::setenv("PX_TEST_BOOL", "OFF", 1);
  EXPECT_EQ(px::env_bool("PX_TEST_BOOL"), false);
  ::setenv("PX_TEST_BOOL", "maybe", 1);
  EXPECT_FALSE(px::env_bool("PX_TEST_BOOL").has_value());
  ::unsetenv("PX_TEST_BOOL");
}

TEST(Env, ParsesDoubles) {
  ::setenv("PX_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(px::env_double("PX_TEST_DBL").value(), 2.5);
  ::unsetenv("PX_TEST_DBL");
}

TEST(UniqueFunction, SmallCallableNoAlloc) {
  int x = 5;
  px::unique_function<int()> f([x] { return x + 1; });
  EXPECT_EQ(f(), 6);
}

TEST(UniqueFunction, LargeCallableHeap) {
  std::array<char, 256> big{};
  big[0] = 'a';
  px::unique_function<char()> f([big] { return big[0]; });
  EXPECT_EQ(f(), 'a');
}

TEST(UniqueFunction, MoveOnlyCapture) {
  auto p = std::make_unique<int>(42);
  px::unique_function<int()> f([p = std::move(p)] { return *p; });
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  px::unique_function<int()> f([] { return 7; });
  px::unique_function<int()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 7);
  f = std::move(g);
  EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, ArgumentsForwarded) {
  px::unique_function<int(int, int)> f([](int a, int b) { return a * b; });
  EXPECT_EQ(f(6, 7), 42);
}

TEST(UniqueFunction, DestructorRunsForCapturedState) {
  auto counter = std::make_shared<int>(0);
  {
    px::unique_function<void()> f([counter] {});
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(Spinlock, MutualExclusion) {
  px::spinlock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::lock_guard<px::spinlock> guard(lock);
        ++counter;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000);
}

TEST(Spinlock, TryLock) {
  px::spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Timer, MeasuresElapsedTime) {
  px::high_resolution_timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double const e = t.elapsed();
  EXPECT_GE(e, 0.015);
  EXPECT_LT(e, 5.0);
  t.restart();
  EXPECT_LT(t.elapsed(), 0.015);
}

TEST(Topology, DetectsSomethingSane) {
  auto const& topo = px::host_topology();
  EXPECT_GE(topo.logical_cpus, 1u);
  EXPECT_GE(topo.physical_cores, 1u);
  EXPECT_LE(topo.physical_cores, topo.logical_cpus);
  EXPECT_GE(topo.numa_domains, 1u);
  EXPECT_EQ(topo.numa_of.size(), topo.logical_cpus);
  EXPECT_FALSE(topo.physical_pus.empty());
}

TEST(Affinity, PinToCore0Succeeds) {
  // CPU 0 always exists; restricted containers may refuse, so only check
  // the call does not crash and returns a bool.
  bool ok = px::pin_this_thread(0);
  (void)ok;
  SUCCEED();
}

TEST(Backoff, EventuallyYields) {
  px::backoff bo;
  EXPECT_FALSE(bo.yielding());
  for (int i = 0; i < 10; ++i) bo.pause();
  EXPECT_TRUE(bo.yielding());
  bo.reset();
  EXPECT_FALSE(bo.yielding());
}

}  // namespace
