// Tests for the extension features: runtime vector-length dispatch (the
// paper-conclusion SVE façade), env-driven scheduler config, and scheduler
// statistics.
#include <gtest/gtest.h>

#include <cstdlib>

#include "px/px.hpp"
#include "px/simd/simd.hpp"

namespace {

// ---- VLA dispatch -----------------------------------------------------------

TEST(VlaDispatch, SelectsRequestedWidth) {
  for (std::size_t bits : {128u, 256u, 512u, 1024u, 2048u}) {
    std::size_t const lanes = px::simd::dispatch_width<float>(
        bits, [](auto tag) { return decltype(tag)::width; });
    EXPECT_EQ(lanes, bits / 32) << bits;
    std::size_t const dlanes = px::simd::dispatch_width<double>(
        bits, [](auto tag) { return decltype(tag)::width; });
    EXPECT_EQ(dlanes, bits / 64) << bits;
  }
}

TEST(VlaDispatch, RejectsUnsupportedWidths) {
  EXPECT_THROW(px::simd::dispatch_width<float>(
                   96, [](auto) { return 0; }),
               std::invalid_argument);
  EXPECT_THROW(px::simd::dispatch_width<float>(
                   384, [](auto) { return 0; }),
               std::invalid_argument);
}

TEST(VlaDispatch, KernelRunsAtRuntimeChosenWidth) {
  // One generic kernel, width picked at run time — the "portable SVE"
  // programming model.
  std::vector<float> data(256);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(i);
  for (std::size_t bits : {128u, 256u, 512u}) {
    float sum = px::simd::dispatch_width<float>(bits, [&](auto tag) {
      using pack_t = typename decltype(tag)::type;
      pack_t acc(0.0f);
      for (std::size_t i = 0; i < data.size(); i += pack_t::width)
        acc += px::simd::load_unaligned<pack_t>(&data[i]);
      return px::simd::reduce_add(acc);
    });
    EXPECT_FLOAT_EQ(sum, 255.0f * 256.0f / 2.0f) << bits;
  }
}

TEST(VlaDispatch, RuntimeBitsReportsBuildTarget) {
  EXPECT_EQ(px::simd::runtime_vector_bits(),
            px::simd::abi::native_vector_bits);
  EXPECT_GE(px::simd::runtime_vector_bits(), 128u);
}

// ---- env-driven config -----------------------------------------------------

TEST(EnvConfig, ReadsKnobs) {
  ::setenv("PX_WORKERS", "3", 1);
  ::setenv("PX_STACK_SIZE", "262144", 1);
  ::setenv("PX_PIN_THREADS", "no", 1);
  ::setenv("PX_NUMA_DOMAINS", "2", 1);
  auto cfg = px::scheduler_config::from_env();
  EXPECT_EQ(cfg.num_workers, 3u);
  EXPECT_EQ(cfg.stack_size, 262144u);
  EXPECT_FALSE(cfg.pin_threads);
  EXPECT_EQ(cfg.numa_domains, 2u);
  ::unsetenv("PX_WORKERS");
  ::unsetenv("PX_STACK_SIZE");
  ::unsetenv("PX_PIN_THREADS");
  ::unsetenv("PX_NUMA_DOMAINS");
  auto defaults = px::scheduler_config::from_env();
  EXPECT_EQ(defaults.num_workers, 0u);
}

TEST(EnvConfig, RuntimeHonoursWorkerCount) {
  ::setenv("PX_WORKERS", "2", 1);
  px::runtime rt(px::scheduler_config::from_env());
  EXPECT_EQ(rt.num_workers(), 2u);
  ::unsetenv("PX_WORKERS");
}

// ---- scheduler stats --------------------------------------------------------

TEST(SchedulerStats, CountsExecutionsAndYields) {
  px::scheduler_config cfg;
  cfg.num_workers = 2;
  px::runtime rt(cfg);
  for (int i = 0; i < 100; ++i)
    rt.post([] { px::this_task::yield(); });
  rt.wait_quiescent();
  auto const stats = rt.sched().aggregate_stats();
  // Every yield re-executes the task, so executions > spawned and yields
  // equal the task count.
  EXPECT_GE(stats.tasks_executed, 200u);
  EXPECT_EQ(stats.yields, 100u);
}

TEST(SchedulerStats, MonotoneAcrossBatches) {
  px::scheduler_config cfg;
  cfg.num_workers = 2;
  px::runtime rt(cfg);
  rt.post([] {});
  rt.wait_quiescent();
  auto const before = rt.sched().aggregate_stats().tasks_executed;
  for (int i = 0; i < 50; ++i) rt.post([] {});
  rt.wait_quiescent();
  auto const after = rt.sched().aggregate_stats().tasks_executed;
  EXPECT_GE(after, before + 50);
}

}  // namespace
