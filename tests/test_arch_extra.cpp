// Additional px::arch coverage: the 2D cluster simulation, model
// cross-properties between the STREAM/stencil/counter models, and the
// machine/fabric pairings the benches rely on.
#include <gtest/gtest.h>

#include "px/arch/cluster_sim.hpp"
#include "px/arch/counter_model.hpp"
#include "px/arch/scaling_model.hpp"
#include "px/arch/stream_model.hpp"

namespace {

using namespace px::arch;
namespace net = px::net;

TEST(Cluster2dSim, SingleNodeMatchesKernelModel) {
  machine m = a64fx();
  cluster2d_config cfg;
  cfg.nodes = 1;
  auto res = simulate_jacobi2d_cluster(m, net::tofu_d(), cfg);
  stencil2d_model model(m);
  double const expect =
      model.run_time_s(m.total_cores(), cfg.nx, cfg.ny_total, cfg.steps,
                       cfg.scalar_bytes, cfg.explicit_vector);
  EXPECT_NEAR(res.makespan_s / expect, 1.0, 0.01);
  EXPECT_EQ(res.messages, 0u);
}

TEST(Cluster2dSim, ScalesDownWithNodes) {
  for (auto const& m : {xeon_e5_2660v3(), a64fx(), thunderx2()}) {
    double prev = 1e18;
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
      cluster2d_config cfg;
      cfg.nodes = n;
      auto res = simulate_jacobi2d_cluster(m, fabric_for(m), cfg);
      EXPECT_LT(res.makespan_s, prev) << m.short_name << " " << n;
      prev = res.makespan_s;
    }
  }
}

TEST(Cluster2dSim, HaloRowsAreChargedByRowLength) {
  machine m = xeon_e5_2660v3();
  cluster2d_config cfg;
  cfg.nodes = 4;
  cfg.steps = 10;
  auto res = simulate_jacobi2d_cluster(m, net::infiniband_edr(), cfg);
  EXPECT_EQ(res.messages, 2u * 3u * 10u);
  // Halo rows (nx floats = 32 KiB) still hide fully under ~10^8-LUP step
  // compute on EDR.
  EXPECT_LT(res.exposed_wait_s, 1e-3);
}

TEST(Cluster2dSim, TinyBlocksExposeBandwidthCost) {
  machine m = xeon_e5_2660v3();
  cluster2d_config cfg;
  cfg.nodes = 8;
  cfg.steps = 20;
  cfg.ny_total = 64;  // 8 rows per node: microseconds of compute per step
  cfg.nx = 65536;     // 256 KiB halo rows
  // 0.005 GB/s: each halo row takes ~52 ms — beyond even the per-step
  // runtime-overhead allowance, so waits must surface.
  net::fabric_model thin{"thin", 1.0, 0.005, 0.5};
  auto res = simulate_jacobi2d_cluster(m, thin, cfg);
  EXPECT_GT(res.exposed_wait_s, 0.01);
}

TEST(FabricPairing, MatchesPaperClusters) {
  EXPECT_EQ(fabric_for(kunpeng916()).name, net::hi1616_nic().name);
  EXPECT_EQ(fabric_for(a64fx()).name, net::tofu_d().name);
  EXPECT_EQ(fabric_for(xeon_e5_2660v3()).name, net::infiniband_edr().name);
  EXPECT_EQ(fabric_for(thunderx2()).name, net::infiniband_edr().name);
}

// ---- cross-model consistency ----------------------------------------------

TEST(ModelConsistency, StencilModelNeverExceedsRooflinePeaks) {
  for (auto const& m : paper_machines()) {
    stencil2d_model model(m);
    for (std::size_t c = 1; c <= m.total_cores(); c += 5) {
      for (std::size_t bytes : {4u, 8u}) {
        for (bool ev : {false, true}) {
          double const perf = model.glups(c, bytes, ev);
          // Nothing beats the 2-transfer roofline at copy bandwidth.
          EXPECT_LE(perf, model.expected_peak_max_glups(c, bytes) + 1e-9)
              << m.short_name << " c=" << c;
          EXPECT_GT(perf, 0.0);
        }
      }
    }
  }
}

TEST(ModelConsistency, CounterModelMonotoneInVectorWidth) {
  // Wider machines retire fewer instructions per LUP for the same kernel
  // (explicit path).
  kernel_spec k;
  k.explicit_vector = true;
  k.scalar_bytes = 4;
  double const neon =
      estimate_jacobi_counters(kunpeng916(), k).instructions;
  double const avx2 =
      estimate_jacobi_counters(xeon_e5_2660v3(), k).instructions;
  double const sve =
      estimate_jacobi_counters(a64fx(), k).instructions;
  EXPECT_GT(neon, avx2);
  EXPECT_GT(avx2, sve);
}

TEST(ModelConsistency, StrongTimesScaleWithNodeRate) {
  // Faster single-node machines stay faster at every node count (capable
  // fabrics; Kunpeng excluded by its NIC term).
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    EXPECT_LT(heat1d_strong_time_s(a64fx(), n),
              heat1d_strong_time_s(thunderx2(), n));
    EXPECT_LT(heat1d_strong_time_s(thunderx2(), n),
              heat1d_strong_time_s(xeon_e5_2660v3(), n));
  }
}

TEST(ModelConsistency, StreamSweepMatchesPointQueries) {
  for (auto const& m : paper_machines()) {
    stream_model sm(m);
    auto pts = sm.sweep();
    for (auto const& p : pts)
      ASSERT_DOUBLE_EQ(p.copy_gbs, sm.copy_bandwidth_gbs(p.cores))
          << m.short_name;
  }
}

TEST(ModelConsistency, KernelSpecLupsArithmetic) {
  kernel_spec k;
  k.nx = 100;
  k.ny = 200;
  k.iterations = 3;
  EXPECT_DOUBLE_EQ(k.lups(), 60000.0);
}

TEST(ModelConsistency, VariantIndexOrderMatchesPaperTables) {
  EXPECT_EQ(variant_index(4, false), 0u);  // Float
  EXPECT_EQ(variant_index(4, true), 1u);   // Vector Float
  EXPECT_EQ(variant_index(8, false), 2u);  // Double
  EXPECT_EQ(variant_index(8, true), 3u);   // Vector Double
}

}  // namespace
