// px::agas rebalancer: the pure greedy planner, load folding (weights,
// health penalties, tenant queue gauges), the strict PX_AGAS_REBALANCE env
// knob, the live rebalanced heat solver, and the 256..1024-virtual-locality
// skewed-cluster model that runs the same planner analytically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "px/agas/rebalance.hpp"
#include "px/arch/cluster_sim.hpp"
#include "px/arch/machine.hpp"
#include "px/counters/counters.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_rebalance.hpp"

namespace {

using px::agas::load_imbalance;
using px::agas::partition_load;
using px::agas::plan_moves;
using px::agas::rebalance_config;

// ---- load_imbalance ------------------------------------------------------

TEST(Rebalance, ImbalanceOfFlatLoadIsOne) {
  EXPECT_DOUBLE_EQ(load_imbalance({4.0, 4.0, 4.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(load_imbalance({}), 1.0);
  EXPECT_DOUBLE_EQ(load_imbalance({0.0, 0.0}), 1.0);
}

TEST(Rebalance, ImbalanceIsMaxOverMean) {
  EXPECT_DOUBLE_EQ(load_imbalance({6.0, 2.0}), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(load_imbalance({9.0, 0.0, 0.0}), 3.0);
}

TEST(Rebalance, ImbalanceSkipsDeadLocalities) {
  // -1 marks dead: excluded from max and mean alike.
  EXPECT_DOUBLE_EQ(load_imbalance({6.0, 2.0, -1.0}), 6.0 / 4.0);
}

// ---- plan_moves ----------------------------------------------------------

TEST(Rebalance, PlannerIdlesBelowTrigger) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 2.0;
  auto moves = plan_moves({5.0, 4.0}, {{0, 0, 1.0}, {1, 1, 1.0}}, cfg);
  EXPECT_TRUE(moves.empty());
}

TEST(Rebalance, PlannerDisabledPlansNothing) {
  rebalance_config cfg;
  cfg.enabled = false;
  auto moves = plan_moves({100.0, 0.0}, {{0, 0, 50.0}}, cfg);
  EXPECT_TRUE(moves.empty());
}

TEST(Rebalance, PlannerMovesHotToColdUntilBalanced) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 1.1;
  cfg.max_moves_per_pass = 8;
  // Node 0 carries everything: 4 partitions of 25 each on node 0.
  std::vector<partition_load> parts = {
      {0, 0, 25.0}, {1, 0, 25.0}, {2, 0, 25.0}, {3, 0, 25.0}};
  auto moves = plan_moves({100.0, 0.0}, parts, cfg);
  ASSERT_FALSE(moves.empty());
  double l0 = 100.0, l1 = 0.0;
  for (auto const& m : moves) {
    EXPECT_EQ(m.from, 0u);
    EXPECT_EQ(m.to, 1u);
    l0 -= m.weight;
    l1 += m.weight;
  }
  EXPECT_LE(load_imbalance({l0, l1}), cfg.imbalance_trigger);
}

TEST(Rebalance, PlannerRespectsMoveBudget) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 1.0 + 1e-9;
  cfg.max_moves_per_pass = 1;
  std::vector<partition_load> parts = {
      {0, 0, 25.0}, {1, 0, 25.0}, {2, 0, 25.0}, {3, 0, 25.0}};
  auto moves = plan_moves({100.0, 0.0}, parts, cfg);
  EXPECT_EQ(moves.size(), 1u);
}

TEST(Rebalance, PlannerNeverTargetsDeadLocalities) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 1.05;
  cfg.max_moves_per_pass = 16;
  std::vector<partition_load> parts = {
      {0, 0, 30.0}, {1, 0, 30.0}, {2, 1, 10.0}};
  // Node 2 is the coldest but dead; everything must flow 0 -> 1.
  auto moves = plan_moves({60.0, 10.0, -1.0}, parts, cfg);
  for (auto const& m : moves) {
    EXPECT_NE(m.to, 2u);
    EXPECT_NE(m.from, 2u);
  }
}

TEST(Rebalance, PlannerSkipsPartitionsBelowMinWeight) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 1.01;
  cfg.min_move_weight = 20.0;
  std::vector<partition_load> parts = {
      {0, 0, 10.0}, {1, 0, 10.0}, {2, 0, 10.0}};
  auto moves = plan_moves({30.0, 0.0}, parts, cfg);
  EXPECT_TRUE(moves.empty());  // all movables are under the floor
}

TEST(Rebalance, PlannerAvoidsOvershootSwaps) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 1.01;
  cfg.max_moves_per_pass = 4;
  // The only movable partition weighs as much as the whole gap: moving it
  // just swaps which node is hot, so the planner must decline.
  std::vector<partition_load> parts = {{0, 0, 50.0}};
  auto moves = plan_moves({50.0, 0.0}, parts, cfg);
  EXPECT_TRUE(moves.empty());
}

TEST(Rebalance, PlannerIsDeterministic) {
  rebalance_config cfg;
  cfg.imbalance_trigger = 1.1;
  cfg.max_moves_per_pass = 8;
  std::vector<partition_load> parts = {
      {3, 0, 10.0}, {1, 0, 10.0}, {2, 1, 5.0}, {0, 0, 10.0}};
  auto a = plan_moves({30.0, 5.0, 0.0}, parts, cfg);
  std::reverse(parts.begin(), parts.end());
  auto b = plan_moves({30.0, 5.0, 0.0}, parts, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
  }
}

// ---- PX_AGAS_REBALANCE: strict env_token parsing -------------------------

struct env_guard {
  ~env_guard() { ::unsetenv("PX_AGAS_REBALANCE"); }
};

TEST(Rebalance, EnvKnobAcceptsExactTokensOnly) {
  env_guard guard;
  rebalance_config base;
  base.enabled = true;

  ::setenv("PX_AGAS_REBALANCE", "off", 1);
  EXPECT_FALSE(rebalance_config::from_env(base).enabled);
  ::setenv("PX_AGAS_REBALANCE", "on", 1);
  base.enabled = false;
  EXPECT_TRUE(rebalance_config::from_env(base).enabled);
}

TEST(Rebalance, EnvKnobIgnoresMalformedValues) {
  env_guard guard;
  rebalance_config base;
  base.enabled = true;
  // Strict: case-sensitive, no trimming, no synonyms — base wins.
  for (char const* bad : {"OFF", "Off", " off", "off ", "0", "false", "no",
                          "disabled", ""}) {
    ::setenv("PX_AGAS_REBALANCE", bad, 1);
    EXPECT_TRUE(rebalance_config::from_env(base).enabled)
        << "value '" << bad << "' should have been rejected";
  }
  base.enabled = false;
  for (char const* bad : {"ON", "On", "1", "true", "yes", " on"}) {
    ::setenv("PX_AGAS_REBALANCE", bad, 1);
    EXPECT_FALSE(rebalance_config::from_env(base).enabled)
        << "value '" << bad << "' should have been rejected";
  }
}

TEST(Rebalance, EnvKnobAbsentKeepsBase) {
  env_guard guard;
  ::unsetenv("PX_AGAS_REBALANCE");
  rebalance_config base;
  base.enabled = false;
  EXPECT_FALSE(rebalance_config::from_env(base).enabled);
  base.enabled = true;
  EXPECT_TRUE(rebalance_config::from_env(base).enabled);
}

// ---- tenant queue gauges -> per-locality loads ---------------------------

TEST(Rebalance, TenantQueueLoadsFoldGaugesByLocality) {
  px::counters::registration reg;
  reg.add("/px/tenant/alpha/queued", px::counters::kind::gauge,
          [] { return std::uint64_t{12}; });
  reg.add("/px/tenant/beta/queued", px::counters::kind::gauge,
          [] { return std::uint64_t{5}; });
  reg.add("/px/tenant/gamma/queued", px::counters::kind::gauge,
          [] { return std::uint64_t{7}; });
  // Non-queued tenant paths must not contribute.
  reg.add("/px/tenant/alpha/rejected", px::counters::kind::monotone,
          [] { return std::uint64_t{999}; });

  auto loads = px::agas::tenant_queue_loads(
      3, [](std::string const& instance) -> std::optional<std::uint32_t> {
        if (instance == "alpha") return 0;
        if (instance == "beta") return 0;
        if (instance == "gamma") return 2;
        return std::nullopt;
      });
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 17.0);
  EXPECT_DOUBLE_EQ(loads[1], 0.0);
  EXPECT_DOUBLE_EQ(loads[2], 7.0);
}

// ---- zipf partition sizing -----------------------------------------------

TEST(Rebalance, ZipfSizesAreSkewedAndExact) {
  auto const sizes = px::stencil::zipf_partition_sizes(1000, 8, 1.1);
  ASSERT_EQ(sizes.size(), 8u);
  std::size_t total = 0;
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    EXPECT_GE(sizes[p], 2u);
    if (p > 0) {
      EXPECT_LE(sizes[p], sizes[p - 1] + 1);  // monotone-ish skew
    }
    total += sizes[p];
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_GT(sizes[0], sizes[7] * 2);  // the head is genuinely heavy
}

// ---- live rebalanced solver ----------------------------------------------

TEST(Rebalance, SkewedHeatRebalancesAndStaysBitwiseExact) {
  auto const initial = px::stencil::heat1d_sine_initial(240);
  px::stencil::skewed_heat_config hc;
  hc.partitions = 8;
  hc.steps = 24;
  hc.steps_per_round = 6;
  hc.zipf_s = 1.1;

  px::dist::domain_config cfg;
  cfg.num_localities = 4;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;

  px::stencil::skewed_heat_config static_cfg = hc;
  static_cfg.rebalance = false;
  px::dist::distributed_domain static_dom(cfg);
  auto const baseline = run_skewed_heat1d(static_dom, initial, static_cfg);
  static_dom.wait_all_quiescent();
  EXPECT_EQ(baseline.migrations, 0u);
  EXPECT_GT(baseline.imbalance_initial, 1.25);  // the zipf skew is real

  px::dist::distributed_domain dom(cfg);
  auto const out = run_skewed_heat1d(dom, initial, hc);
  dom.wait_all_quiescent();  // single-residence invariant runs here
  EXPECT_GT(out.migrations, 0u);
  EXPECT_LT(out.imbalance_final, out.imbalance_initial);
  ASSERT_EQ(out.values.size(), baseline.values.size());
  EXPECT_EQ(out.values, baseline.values);  // bitwise, not approximately
}

// ---- the ≥256-virtual-locality analytic model ----------------------------

TEST(Rebalance, MigrationCostModelIsSaneAndMonotone) {
  auto const m = px::arch::a64fx();
  auto const fab = px::arch::fabric_for(m);
  double const small = px::arch::migration_cost_s(m, fab, 1 << 10);
  double const big = px::arch::migration_cost_s(m, fab, 1 << 24);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
  // Control-message floor: even zero bytes pay latency for ack + commit.
  EXPECT_GT(px::arch::migration_cost_s(m, fab, 0), 0.0);
}

TEST(Rebalance, SkewedClusterRebalanceBeatsStaticAt256) {
  auto const m = px::arch::a64fx();
  auto const fab = px::arch::fabric_for(m);
  px::arch::skewed_cluster_config cfg;
  cfg.nodes = 256;
  cfg.partitions = 1024;
  cfg.rounds = 32;
  cfg.policy.max_moves_per_pass = 16;

  px::arch::skewed_cluster_config static_cfg = cfg;
  static_cfg.rebalance = false;
  auto const stat = px::arch::simulate_skewed_cluster(m, fab, static_cfg);
  auto const reb = px::arch::simulate_skewed_cluster(m, fab, cfg);

  EXPECT_EQ(stat.migrations, 0u);
  EXPECT_DOUBLE_EQ(stat.imbalance_final, stat.imbalance_initial);
  EXPECT_GT(reb.migrations, 0u);
  EXPECT_LT(reb.imbalance_final, reb.imbalance_initial);
  // The point of the whole exercise: even paying migration costs, the
  // rebalanced makespan wins on a zipf-skewed load.
  EXPECT_LT(reb.makespan_s, stat.makespan_s);
  EXPECT_GT(reb.migration_s, 0.0);
}

TEST(Rebalance, SkewedClusterScalesTo1024Localities) {
  auto const m = px::arch::thunderx2();
  auto const fab = px::arch::fabric_for(m);
  px::arch::skewed_cluster_config cfg;
  cfg.nodes = 1024;
  cfg.partitions = 4096;
  cfg.rounds = 24;
  cfg.policy.max_moves_per_pass = 32;

  px::arch::skewed_cluster_config static_cfg = cfg;
  static_cfg.rebalance = false;
  auto const stat = px::arch::simulate_skewed_cluster(m, fab, static_cfg);
  auto const reb = px::arch::simulate_skewed_cluster(m, fab, cfg);
  EXPECT_GT(reb.migrations, 0u);
  EXPECT_LT(reb.makespan_s, stat.makespan_s);
  // Determinism at scale: same config, same answer.
  auto const again = px::arch::simulate_skewed_cluster(m, fab, cfg);
  EXPECT_DOUBLE_EQ(again.makespan_s, reb.makespan_s);
  EXPECT_EQ(again.migrations, reb.migrations);
}

}  // namespace
