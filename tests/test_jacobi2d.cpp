// Tests for the 2D Jacobi solver: agreement with the serial reference,
// scalar-vs-pack equivalence across widths and precisions, boundary
// handling, and convergence.
#include <gtest/gtest.h>

#include "px/px.hpp"
#include "px/stencil/convergence.hpp"
#include "px/stencil/jacobi2d.hpp"
#include "px/stencil/reference.hpp"

namespace {

using px::simd::pack;
using namespace px::stencil;

px::scheduler_config cfg3() {
  px::scheduler_config c;
  c.num_workers = 3;
  return c;
}

// Builds the reference ghost-ring grid matching init_dirichlet_problem.
std::vector<double> reference_initial(std::size_t nx, std::size_t ny) {
  std::vector<double> u((nx + 2) * (ny + 2), 0.0);
  for (std::size_t y = 0; y < ny + 2; ++y) {
    u[y * (nx + 2)] = 1.0;
    u[y * (nx + 2) + nx + 1] = 1.0;
  }
  for (std::size_t x = 0; x < nx + 2; ++x) {
    u[x] = 1.0;
    u[(ny + 1) * (nx + 2) + x] = 1.0;
  }
  return u;
}

template <typename Cell>
void check_against_reference(std::size_t nx, std::size_t ny,
                             std::size_t steps) {
  px::runtime rt(cfg3());
  field2d<Cell> u0(nx, ny), u1(nx, ny);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);

  auto result = px::sync_wait(rt, [&] {
    return run_jacobi2d(px::execution::par, u0, u1, steps);
  });
  auto const& final_field = result.final_index == 0 ? u0 : u1;

  auto ref = reference_jacobi2d(reference_initial(nx, ny), nx, ny, steps);
  using scalar = typename field2d<Cell>::scalar;
  double const tol = std::is_same_v<scalar, float> ? 2e-5 : 1e-12;
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_NEAR(static_cast<double>(final_field.get(x, y)),
                  ref[(y + 1) * (nx + 2) + x + 1], tol)
          << "x=" << x << " y=" << y;
}

TEST(Jacobi2d, ScalarDoubleMatchesReference) {
  check_against_reference<double>(16, 12, 20);
}
TEST(Jacobi2d, ScalarFloatMatchesReference) {
  check_against_reference<float>(16, 12, 20);
}
TEST(Jacobi2d, PackDoubleW2MatchesReference) {
  check_against_reference<pack<double, 2>>(16, 12, 20);
}
TEST(Jacobi2d, PackDoubleW4MatchesReference) {
  check_against_reference<pack<double, 4>>(32, 9, 15);
}
TEST(Jacobi2d, PackDoubleW8MatchesReference) {
  check_against_reference<pack<double, 8>>(64, 5, 10);
}
TEST(Jacobi2d, PackFloatW4MatchesReference) {
  check_against_reference<pack<float, 4>>(16, 8, 10);
}
TEST(Jacobi2d, PackFloatW8MatchesReference) {
  check_against_reference<pack<float, 8>>(32, 8, 10);
}
TEST(Jacobi2d, PackFloatW16MatchesReference) {
  // The A64FX SVE-512 shape of the paper.
  check_against_reference<pack<float, 16>>(64, 6, 8);
}

TEST(Jacobi2d, ScalarAndPackBitwiseIdenticalForDoubles) {
  // The pack kernel evaluates the same expression per element, so double
  // results must agree bitwise with the scalar kernel.
  px::runtime rt(cfg3());
  constexpr std::size_t nx = 32, ny = 10, steps = 25;
  field2d<double> s0(nx, ny), s1(nx, ny);
  field2d<pack<double, 4>> p0(nx, ny), p1(nx, ny);
  init_dirichlet_problem(s0);
  init_dirichlet_problem(s1);
  init_dirichlet_problem(p0);
  init_dirichlet_problem(p1);
  px::sync_wait(rt, [&] {
    run_jacobi2d(px::execution::par, s0, s1, steps);
    run_jacobi2d(px::execution::par, p0, p1, steps);
    return 0;
  });
  auto const& sf = steps % 2 == 0 ? s0 : s1;
  auto const& pf = steps % 2 == 0 ? p0 : p1;
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_EQ(sf.get(x, y), pf.get(x, y)) << "x=" << x << " y=" << y;
}

TEST(Jacobi2d, ConvergesTowardBoundaryValue) {
  // With all-1 Dirichlet boundaries the interior converges to 1.
  px::runtime rt(cfg3());
  field2d<double> u0(8, 8), u1(8, 8);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);
  px::sync_wait(rt, [&] {
    return run_jacobi2d(px::execution::par, u0, u1, 2000);
  });
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x)
      EXPECT_NEAR(u0.get(x, y), 1.0, 1e-6);
}

TEST(Jacobi2d, ZeroStepsLeavesFieldUntouched) {
  px::runtime rt(cfg3());
  field2d<double> u0(8, 4), u1(8, 4);
  init_dirichlet_problem(u0);
  u0.set(3, 2, 9.0);
  auto r = px::sync_wait(rt, [&] {
    return run_jacobi2d(px::execution::par, u0, u1, 0);
  });
  EXPECT_EQ(r.final_index, 0u);
  EXPECT_DOUBLE_EQ(u0.get(3, 2), 9.0);
}

TEST(Jacobi2d, ReportsPlausibleGlups) {
  px::runtime rt(cfg3());
  field2d<float> u0(128, 64), u1(128, 64);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);
  auto r = px::sync_wait(rt, [&] {
    return run_jacobi2d(px::execution::par, u0, u1, 50);
  });
  EXPECT_GT(r.glups, 0.0);
  EXPECT_EQ(r.steps, 50u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Jacobi2d, ResidualIsZeroAtFixedPoint) {
  px::runtime rt(cfg3());
  field2d<double> f(8, 8);
  // Constant field equal to its boundaries is the Jacobi fixed point.
  init_dirichlet_problem(f);
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x) f.set(x, y, 1.0);
  f.refresh_all_halos();
  double const r = px::sync_wait(rt, [&] {
    return jacobi2d_residual(px::execution::par, f);
  });
  EXPECT_NEAR(r, 0.0, 1e-15);
}

TEST(Jacobi2d, ResidualDetectsDefect) {
  px::runtime rt(cfg3());
  field2d<double> f(8, 8);
  init_dirichlet_problem(f);
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x) f.set(x, y, 1.0);
  f.set(3, 3, 1.5);
  f.refresh_all_halos();
  double const r = px::sync_wait(rt, [&] {
    return jacobi2d_residual(px::execution::par, f);
  });
  EXPECT_NEAR(r, 0.5, 1e-12);  // the poked cell's own defect dominates
}

TEST(Jacobi2d, SolveToToleranceConverges) {
  px::runtime rt(cfg3());
  field2d<double> u0(16, 16), u1(16, 16);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);
  auto result = px::sync_wait(rt, [&] {
    return solve_jacobi2d_to_tolerance(px::execution::par, u0, u1, 1e-8,
                                       100000, 32);
  });
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.residual, 1e-8);
  EXPECT_GT(result.sweeps, 10u);
  auto const& fin = result.final_index == 0 ? u0 : u1;
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      EXPECT_NEAR(fin.get(x, y), 1.0, 1e-5);
}

TEST(Jacobi2d, SolveToToleranceRespectsSweepCap) {
  px::runtime rt(cfg3());
  field2d<double> u0(32, 32), u1(32, 32);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);
  auto result = px::sync_wait(rt, [&] {
    return solve_jacobi2d_to_tolerance(px::execution::par, u0, u1, 1e-14,
                                       20, 8);
  });
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.sweeps, 20u);
  EXPECT_GT(result.residual, 1e-14);
}

TEST(Jacobi2d, ResidualAgreesBetweenScalarAndPack) {
  px::runtime rt(cfg3());
  field2d<double> s(16, 8);
  field2d<px::simd::pack<double, 4>> p(16, 8);
  init_dirichlet_problem(s);
  init_dirichlet_problem(p);
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 16; ++x) {
      double const v = 0.1 * static_cast<double>(x) -
                       0.05 * static_cast<double>(y);
      s.set(x, y, v);
      p.set(x, y, v);
    }
  s.refresh_all_halos();
  p.refresh_all_halos();
  auto [rs, rp] = px::sync_wait(rt, [&] {
    return std::make_pair(jacobi2d_residual(px::execution::par, s),
                          jacobi2d_residual(px::execution::par, p));
  });
  EXPECT_DOUBLE_EQ(rs, rp);
}

TEST(Jacobi2d, SequencedPolicyGivesSameAnswer) {
  field2d<double> a0(8, 6), a1(8, 6), b0(8, 6), b1(8, 6);
  for (auto* f : {&a0, &a1, &b0, &b1}) init_dirichlet_problem(*f);
  px::runtime rt(cfg3());
  px::sync_wait(rt, [&] {
    run_jacobi2d(px::execution::par, a0, a1, 13);
    return 0;
  });
  run_jacobi2d(px::execution::seq, b0, b1, 13);
  for (std::size_t y = 0; y < 6; ++y)
    for (std::size_t x = 0; x < 8; ++x)
      ASSERT_EQ(a1.get(x, y), b1.get(x, y));
}

}  // namespace
