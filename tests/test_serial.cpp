// Tests for the serialization archives: round trips for every supported
// type, nested containers, user types, and underflow detection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "px/serial/archive.hpp"
#include "px/support/random.hpp"

namespace {

template <typename T>
T roundtrip(T const& value) {
  auto bytes = px::serial::to_bytes(value);
  return px::serial::from_bytes<T>(
      std::span<std::byte const>(bytes.data(), bytes.size()));
}

TEST(Serial, Arithmetic) {
  EXPECT_EQ(roundtrip(42), 42);
  EXPECT_EQ(roundtrip(-17L), -17L);
  EXPECT_EQ(roundtrip(3.25), 3.25);
  EXPECT_EQ(roundtrip(1.5f), 1.5f);
  EXPECT_EQ(roundtrip(true), true);
  EXPECT_EQ(roundtrip(std::uint8_t{255}), 255);
  EXPECT_EQ(roundtrip(std::uint64_t{0xdeadbeefcafebabeull}),
            0xdeadbeefcafebabeull);
}

enum class colour : std::uint16_t { red = 3, green = 77 };

TEST(Serial, Enum) { EXPECT_EQ(roundtrip(colour::green), colour::green); }

TEST(Serial, Strings) {
  EXPECT_EQ(roundtrip(std::string("")), "");
  EXPECT_EQ(roundtrip(std::string("hello world")), "hello world");
  std::string with_nul("a\0b", 3);
  EXPECT_EQ(roundtrip(with_nul), with_nul);
}

TEST(Serial, TrivialVector) {
  std::vector<double> v{1.0, 2.5, -3.75};
  EXPECT_EQ(roundtrip(v), v);
  EXPECT_EQ(roundtrip(std::vector<int>{}), std::vector<int>{});
}

TEST(Serial, NonTrivialVector) {
  std::vector<std::string> v{"a", "", "long string with spaces"};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Serial, NestedVector) {
  std::vector<std::vector<int>> v{{1, 2}, {}, {3}};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Serial, PairTupleArray) {
  auto p = std::make_pair(std::string("k"), 9);
  EXPECT_EQ(roundtrip(p), p);
  auto t = std::make_tuple(1, 2.5, std::string("x"));
  EXPECT_EQ(roundtrip(t), t);
  std::array<int, 4> a{5, 6, 7, 8};
  EXPECT_EQ(roundtrip(a), a);
}

TEST(Serial, Maps) {
  std::map<std::string, int> m{{"a", 1}, {"b", 2}};
  EXPECT_EQ(roundtrip(m), m);
  std::unordered_map<int, std::string> um{{1, "x"}, {2, "y"}};
  EXPECT_EQ(roundtrip(um), um);
}

TEST(Serial, Optional) {
  EXPECT_EQ(roundtrip(std::optional<int>{}), std::nullopt);
  EXPECT_EQ(roundtrip(std::optional<int>{5}), 5);
  EXPECT_EQ(roundtrip(std::optional<std::string>{"s"}),
            std::optional<std::string>{"s"});
}

struct custom_point {
  double x = 0, y = 0;
  std::vector<int> tags;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& x& y& tags;
  }
  bool operator==(custom_point const&) const = default;
};

TEST(Serial, MemberSerializeHook) {
  custom_point p{1.5, -2.5, {1, 2, 3}};
  EXPECT_EQ(roundtrip(p), p);
}

struct adl_type {
  int v = 0;
  bool operator==(adl_type const&) const = default;
};

template <typename Archive>
void serialize(Archive& ar, adl_type& t) {
  ar& t.v;
}

TEST(Serial, AdlSerializeHook) {
  adl_type t{33};
  EXPECT_EQ(roundtrip(t), t);
}

TEST(Serial, NestedUserTypes) {
  std::vector<custom_point> v{{1, 2, {3}}, {4, 5, {}}};
  EXPECT_EQ(roundtrip(v), v);
  std::map<std::string, custom_point> m{{"p", {9, 8, {7}}}};
  EXPECT_EQ(roundtrip(m), m);
}

TEST(Serial, MultipleValuesInOneArchive) {
  px::serial::output_archive out;
  out& 42& std::string("mid")& 2.5;
  auto bytes = out.take();
  px::serial::input_archive in(
      std::span<std::byte const>(bytes.data(), bytes.size()));
  int a = 0;
  std::string s;
  double d = 0;
  in& a& s& d;
  EXPECT_EQ(a, 42);
  EXPECT_EQ(s, "mid");
  EXPECT_EQ(d, 2.5);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(Serial, UnderflowThrows) {
  auto bytes = px::serial::to_bytes(1);  // 4 bytes
  px::serial::input_archive in(
      std::span<std::byte const>(bytes.data(), bytes.size()));
  double d;
  EXPECT_THROW(in& d, std::runtime_error);
}

TEST(Serial, LargePayload) {
  std::vector<double> big(100000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<double>(i) * 0.5;
  EXPECT_EQ(roundtrip(big), big);
}

// ---- randomized structural property tests ---------------------------------

struct random_record {
  std::int32_t id = 0;
  std::string name;
  std::vector<double> samples;
  std::map<std::string, std::int64_t> tags;
  std::optional<std::pair<int, int>> range;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& id& name& samples& tags& range;
  }
  bool operator==(random_record const&) const = default;
};

class SerialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialFuzz, RandomNestedStructuresRoundtrip) {
  px::xoshiro256ss rng(GetParam());
  auto rand_string = [&] {
    std::string s;
    auto const len = rng.below(20);
    for (std::uint64_t i = 0; i < len; ++i)
      s.push_back(static_cast<char>('a' + rng.below(26)));
    return s;
  };

  std::vector<random_record> records(rng.below(8) + 1);
  for (auto& r : records) {
    r.id = static_cast<std::int32_t>(rng());
    r.name = rand_string();
    r.samples.resize(rng.below(50));
    for (auto& s : r.samples) s = rng.uniform() * 1e6 - 5e5;
    auto const ntags = rng.below(5);
    for (std::uint64_t i = 0; i < ntags; ++i)
      r.tags[rand_string()] = static_cast<std::int64_t>(rng());
    if (rng.below(2) == 0)
      r.range = std::make_pair(static_cast<int>(rng.below(100)),
                               static_cast<int>(rng.below(100)));
  }
  EXPECT_EQ(roundtrip(records), records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(Serial, SpecialFloatValuesSurvive) {
  std::vector<double> specials{
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon(),
  };
  auto back = roundtrip(specials);
  ASSERT_EQ(back.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i)
    EXPECT_EQ(std::memcmp(&back[i], &specials[i], sizeof(double)), 0) << i;
  // NaN separately (NaN != NaN).
  double const nan = std::numeric_limits<double>::quiet_NaN();
  double const back_nan = roundtrip(nan);
  EXPECT_TRUE(std::isnan(back_nan));
}

}  // namespace
