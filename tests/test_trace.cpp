// Tracer storage semantics introduced by the per-thread ring rewrite:
// recording generations (enable() logically clears without touching other
// threads' storage), drop accounting for flips and ring overflow, the
// /px/trace/dropped counter, and cross-thread ring merging.
//
// All of these run in one process, and dropped_count() is process-lifetime
// monotone — every assertion works on deltas, never absolute values.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "px/counters/counters.hpp"
#include "px/runtime/trace.hpp"

namespace {

namespace trace = px::trace;

std::uint64_t dropped() { return trace::dropped_count(); }

TEST(TraceGeneration, EnableBumpsGeneration) {
  std::uint32_t const g0 = trace::generation();
  trace::enable();
  std::uint32_t const g1 = trace::generation();
  trace::disable();
  EXPECT_GT(g1, g0);
  // disable() does not start a new generation; the events stay readable.
  EXPECT_EQ(trace::generation(), g1);
}

TEST(TraceGeneration, CrossGenerationSliceDroppedAndCounted) {
  trace::enable();
  // Simulate a slice whose begin timestamp was taken under the previous
  // enable(): snapshot the generation, flip a new one, then complete.
  std::uint32_t const stale_gen = trace::generation();
  std::uint64_t const begin = trace::now_us();
  trace::enable();  // recording epoch changes mid-slice

  std::uint64_t const before = dropped();
  trace::record_slice("stale", 1, begin, 1, 0, stale_gen);
  EXPECT_EQ(trace::event_count(), 0u);  // not emitted into the new epoch
  EXPECT_EQ(dropped(), before + 1);

  // The same slice with a current generation records fine.
  trace::record_slice("fresh", 1, begin, 1, 0, trace::generation());
  EXPECT_EQ(trace::event_count(), 1u);
  EXPECT_EQ(dropped(), before + 1);
  trace::disable();
}

TEST(TraceGeneration, ScopedRegionAcrossEnableRecordsNothing) {
  trace::enable();
  std::uint64_t const before = dropped();
  {
    trace::scoped_region region("spans-enable");
    trace::enable();  // flip while the region is open
  }
  trace::disable();
  EXPECT_EQ(trace::to_json().find("spans-enable"), std::string::npos);
  EXPECT_EQ(dropped(), before + 1);
}

TEST(TraceGeneration, RecordWhileDisabledCountsAsDrop) {
  ASSERT_FALSE(trace::enabled());
  std::uint64_t const before = dropped();
  trace::record_slice("while-off", 1, 0, 1, 0);
  EXPECT_EQ(dropped(), before + 1);
}

TEST(TraceRing, OverflowStopsRecordingAndCounts) {
  // A fresh thread gets a fresh (tiny) ring; the calling thread's existing
  // ring keeps its original capacity, so run the overflow on a new thread.
  trace::set_ring_capacity(4);
  trace::enable();
  std::uint64_t const before = dropped();
  std::thread t([] {
    std::uint32_t const gen = trace::generation();
    for (std::uint64_t i = 0; i < 10; ++i)
      trace::record_slice("ov", i, i, 1, 7, gen);
  });
  t.join();
  trace::disable();
  EXPECT_EQ(trace::event_count(), 4u);  // ring filled, never wrapped
  EXPECT_EQ(dropped(), before + 6);     // the rest counted as overflow

  // First 4 slices survive (rings fill oldest-first, never overwrite).
  std::string const json = trace::to_json();
  EXPECT_NE(json.find("\"task\":0"), std::string::npos);
  EXPECT_NE(json.find("\"task\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"task\":4"), std::string::npos);
  trace::set_ring_capacity(std::size_t{1} << 15);
}

TEST(TraceRing, EventsFromMultipleThreadsMerge) {
  trace::enable();
  std::uint32_t const gen = trace::generation();
  auto writer = [gen](std::uint32_t lane) {
    for (std::uint64_t i = 0; i < 50; ++i)
      trace::record_slice("mt", lane * 1000 + i, i, 1, lane, gen);
  };
  std::thread a(writer, 1), b(writer, 2);
  writer(3);
  a.join();
  b.join();
  trace::disable();
  EXPECT_EQ(trace::event_count(), 150u);
  std::string const json = trace::to_json();
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  // Lane metadata names every lane that appears.
  EXPECT_NE(json.find("\"args\":{\"name\":\"worker #2\"}"), std::string::npos);
}

TEST(TraceRing, EnableMakesOldThreadEventsInvisible) {
  trace::enable();
  std::thread t([] { trace::record_slice("old", 1, 0, 1, 0); });
  t.join();
  EXPECT_EQ(trace::event_count(), 1u);
  trace::enable();  // new generation: the exited thread's ring goes stale
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::to_json().find("\"old\""), std::string::npos);
  trace::disable();
}

TEST(TraceCounter, DroppedVisibleInRegistry) {
  auto& reg = px::counters::registry::instance();
  std::uint64_t v0 = 0;
  ASSERT_TRUE(reg.value_of("/px/trace/dropped", v0));
  trace::record_slice("off", 1, 0, 1, 0);  // disabled → flip drop
  std::uint64_t v1 = 0;
  ASSERT_TRUE(reg.value_of("/px/trace/dropped", v1));
  EXPECT_EQ(v1, v0 + 1);
  auto const snap = reg.take_snapshot();
  auto const* s = snap.find("/px/trace/dropped");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, v1);
}

}  // namespace
