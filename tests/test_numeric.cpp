// Tests for parallel scans (inclusive/exclusive) against their sequential
// counterparts, including non-commutative operations and size sweeps.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "px/px.hpp"

namespace {

struct NumericTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 4;
    return c;
  }()};
};

class ScanSizes : public NumericTest,
                  public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ScanSizes, InclusiveScanMatchesSequential) {
  std::size_t const n = GetParam();
  std::vector<long> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = static_cast<long>((i * 7 + 3) % 23);
  std::vector<long> expect(n), got(n);
  px::parallel::inclusive_scan(px::execution::seq, in.begin(), in.end(),
                               expect.begin(), 0L, std::plus<>{});
  px::sync_wait(rt, [&] {
    px::parallel::inclusive_scan(px::execution::par, in.begin(), in.end(),
                                 got.begin(), 0L, std::plus<>{});
    return 0;
  });
  EXPECT_EQ(got, expect);
}

TEST_P(ScanSizes, ExclusiveScanMatchesSequential) {
  std::size_t const n = GetParam();
  std::vector<long> in(n, 2);
  std::vector<long> expect(n), got(n);
  px::parallel::exclusive_scan(px::execution::seq, in.begin(), in.end(),
                               expect.begin(), 100L, std::plus<>{});
  px::sync_wait(rt, [&] {
    px::parallel::exclusive_scan(px::execution::par, in.begin(), in.end(),
                                 got.begin(), 100L, std::plus<>{});
    return 0;
  });
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(1, 2, 3, 17, 64, 100, 1000,
                                           10000));

TEST_F(NumericTest, InclusiveScanEmptyRange) {
  std::vector<int> in, out;
  px::sync_wait(rt, [&] {
    px::parallel::inclusive_scan(px::execution::par, in.begin(), in.end(),
                                 out.begin(), 0, std::plus<>{});
    return 0;
  });
  SUCCEED();
}

TEST_F(NumericTest, InclusiveScanNonCommutativeOp) {
  // String concatenation is associative but not commutative: the scan must
  // preserve order.
  std::vector<std::string> in{"a", "b", "c", "d", "e", "f", "g", "h",
                              "i", "j", "k", "l", "m", "n", "o", "p"};
  std::vector<std::string> expect(in.size()), got(in.size());
  px::parallel::inclusive_scan(px::execution::seq, in.begin(), in.end(),
                               expect.begin(), std::string{},
                               std::plus<>{});
  px::sync_wait(rt, [&] {
    px::parallel::inclusive_scan(px::execution::par.with(3), in.begin(),
                                 in.end(), got.begin(), std::string{},
                                 std::plus<>{});
    return 0;
  });
  EXPECT_EQ(got, expect);
  EXPECT_EQ(got.back(), "abcdefghijklmnop");
}

TEST_F(NumericTest, InclusiveScanWithInit) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> got(3);
  px::sync_wait(rt, [&] {
    px::parallel::inclusive_scan(px::execution::par, in.begin(), in.end(),
                                 got.begin(), 10, std::plus<>{});
    return 0;
  });
  EXPECT_EQ(got, (std::vector<int>{11, 13, 16}));
}

TEST_F(NumericTest, ExclusiveScanFirstElementIsInit) {
  std::vector<int> in{5, 6, 7};
  std::vector<int> got(3);
  px::sync_wait(rt, [&] {
    px::parallel::exclusive_scan(px::execution::par, in.begin(), in.end(),
                                 got.begin(), 1, std::plus<>{});
    return 0;
  });
  EXPECT_EQ(got, (std::vector<int>{1, 6, 12}));
}

TEST_F(NumericTest, ScanInPlace) {
  // Output aliasing the input is allowed (each pass reads before writing
  // within its own index).
  std::vector<long> v(5000, 1);
  px::sync_wait(rt, [&] {
    px::parallel::inclusive_scan(px::execution::par, v.begin(), v.end(),
                                 v.begin(), 0L, std::plus<>{});
    return 0;
  });
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(v[i], static_cast<long>(i + 1));
}

}  // namespace
