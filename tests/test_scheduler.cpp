// Tests for the scheduler/runtime: spawning, nesting, yielding, placement
// hints, quiescence, clean shutdown, multiple coexisting runtimes, stats.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "px/lcos/async.hpp"
#include "px/lcos/event.hpp"
#include "px/runtime/runtime.hpp"
#include "px/runtime/timer_service.hpp"

namespace {

px::scheduler_config cfg(std::size_t workers) {
  px::scheduler_config c;
  c.num_workers = workers;
  return c;
}

TEST(Scheduler, RunsASingleTask) {
  px::runtime rt(cfg(2));
  std::atomic<int> x{0};
  rt.post([&] { x.store(42); });
  rt.wait_quiescent();
  EXPECT_EQ(x.load(), 42);
}

TEST(Scheduler, RunsManyTasks) {
  px::runtime rt(cfg(4));
  std::atomic<long> sum{0};
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) rt.post([&sum, i] { sum.fetch_add(i); });
  rt.wait_quiescent();
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
  EXPECT_EQ(rt.sched().tasks_spawned(), static_cast<std::uint64_t>(n));
}

TEST(Scheduler, NestedSpawning) {
  px::runtime rt(cfg(3));
  std::atomic<int> count{0};
  rt.post([&] {
    for (int i = 0; i < 10; ++i)
      px::post([&] {
        for (int j = 0; j < 10; ++j) px::post([&] { count.fetch_add(1); });
      });
  });
  rt.wait_quiescent();
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, PlacementHintLandsOnRequestedWorker) {
  px::runtime rt(cfg(4));
  std::atomic<int> wrong{0};
  for (int w = 0; w < 4; ++w)
    for (int i = 0; i < 50; ++i)
      rt.post(
          [&wrong, w] {
            if (px::this_task::worker_index() != static_cast<std::size_t>(w))
              wrong.fetch_add(1);
          },
          w);
  rt.wait_quiescent();
  // Hinted tasks from an external thread land in the target worker's
  // injection queue, which only its owner pops — placement is exact.
  EXPECT_EQ(wrong.load(), 0);
}

TEST(Scheduler, YieldInterleavesTasks) {
  px::runtime rt(cfg(1));  // single worker forces interleaving via yield
  std::atomic<bool> flag{false};
  std::atomic<bool> saw_flag{false};
  rt.post([&] {
    while (!flag.load()) px::this_task::yield();
    saw_flag.store(true);
  });
  rt.post([&] { flag.store(true); });
  rt.wait_quiescent();
  EXPECT_TRUE(saw_flag.load());
}

TEST(Scheduler, SleepForSuspendsNotBlocks) {
  px::runtime rt(cfg(1));
  std::atomic<int> order{0};
  std::atomic<int> sleeper_rank{-1}, worker_rank{-1};
  rt.post([&] {
    px::this_task::sleep_for(std::chrono::milliseconds(50));
    sleeper_rank.store(order.fetch_add(1));
  });
  rt.post([&] { worker_rank.store(order.fetch_add(1)); });
  rt.wait_quiescent();
  // The non-sleeping task must have completed while the sleeper suspended,
  // even on a single worker.
  EXPECT_EQ(worker_rank.load(), 0);
  EXPECT_EQ(sleeper_rank.load(), 1);
}

TEST(Scheduler, StealingBalancesWork) {
  px::runtime rt(cfg(4));
  // Pin all initial tasks to worker 0; the others must steal.
  std::atomic<int> done{0};
  std::set<std::size_t> workers_seen;
  px::spinlock seen_lock;
  for (int i = 0; i < 200; ++i)
    rt.post(
        [&] {
          // Busy-ish work so stealing has time to happen.
          volatile double acc = 0;
          for (int k = 0; k < 2000; ++k) acc = acc + k;
          {
            std::lock_guard<px::spinlock> g(seen_lock);
            workers_seen.insert(px::this_task::worker_index());
          }
          done.fetch_add(1);
        },
        0);
  rt.wait_quiescent();
  EXPECT_EQ(done.load(), 200);
  // On a single-CPU host preemption still lets other workers steal
  // occasionally, but we only require correctness: all ran.
}

TEST(Scheduler, QuiescenceWaitsForAllWork) {
  px::runtime rt(cfg(2));
  std::atomic<int> completed{0};
  rt.post([&] {
    px::this_task::sleep_for(std::chrono::milliseconds(30));
    px::post([&] {
      px::this_task::sleep_for(std::chrono::milliseconds(20));
      completed.fetch_add(1);
    });
    completed.fetch_add(1);
  });
  rt.wait_quiescent();
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(rt.sched().active_tasks(), 0u);
}

TEST(Scheduler, ShutdownIsIdempotent) {
  px::runtime rt(cfg(2));
  rt.post([] {});
  rt.shutdown();
  rt.shutdown();
  SUCCEED();
}

TEST(Scheduler, MultipleRuntimesCoexist) {
  px::runtime a(cfg(2)), b(cfg(2));
  std::atomic<int> xa{0}, xb{0};
  for (int i = 0; i < 100; ++i) {
    a.post([&] { xa.fetch_add(1); });
    b.post([&] { xb.fetch_add(1); });
  }
  a.wait_quiescent();
  b.wait_quiescent();
  EXPECT_EQ(xa.load(), 100);
  EXPECT_EQ(xb.load(), 100);
}

TEST(Scheduler, RuntimeCurrentResolvesInsideTask) {
  px::runtime rt(cfg(2));
  px::runtime* seen = nullptr;
  rt.post([&] { seen = px::runtime::current(); });
  rt.wait_quiescent();
  EXPECT_EQ(seen, &rt);
  EXPECT_EQ(px::runtime::current(), nullptr);  // external thread
}

TEST(Scheduler, WorkerCountDefaultsToPhysicalCores) {
  px::runtime rt{px::scheduler_config{}};
  EXPECT_GE(rt.num_workers(), 1u);
}

TEST(Scheduler, NumaDomainsAssignedBlockwise) {
  px::scheduler_config c;
  c.num_workers = 4;
  c.numa_domains = 2;
  px::runtime rt(c);
  std::array<std::atomic<int>, 4> domain_of;
  for (auto& d : domain_of) d.store(-1);
  for (int w = 0; w < 4; ++w)
    rt.post([&domain_of, w] {
      domain_of[static_cast<std::size_t>(w)].store(
          static_cast<int>(px::this_task::numa_domain()));
    },
            w);
  rt.wait_quiescent();
  EXPECT_EQ(domain_of[0].load(), 0);
  EXPECT_EQ(domain_of[1].load(), 0);
  EXPECT_EQ(domain_of[2].load(), 1);
  EXPECT_EQ(domain_of[3].load(), 1);
}

TEST(TimerService, CallbacksFireInDeadlineOrder) {
  auto& ts = px::rt::timer_service::instance();
  std::vector<int> order;
  px::spinlock lock;
  px::event done;
  auto const now = px::rt::timer_service::clock::now();
  ts.call_at(now + std::chrono::milliseconds(30), [&] {
    std::lock_guard<px::spinlock> g(lock);
    order.push_back(2);
    done.set();
  });
  ts.call_at(now + std::chrono::milliseconds(10), [&] {
    std::lock_guard<px::spinlock> g(lock);
    order.push_back(1);
  });
  done.wait();
  std::lock_guard<px::spinlock> g(lock);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerService, CancelAndWaitBlocksUntilRunningCallbackReturns) {
  // Regression: a canceller that loses the token claim must not proceed
  // to tear down the callback's captures while the callback is still
  // executing (coalesce flush-deadline vs ~distributed_domain race).
  auto& ts = px::rt::timer_service::instance();
  std::atomic<bool> entered{false}, release{false}, finished{false};
  auto token = std::make_shared<px::rt::timer_token>();
  ts.call_at(px::rt::timer_service::clock::now(),
             [&] {
               entered.store(true);
               while (!release.load()) std::this_thread::yield();
               finished.store(true);
             },
             token);
  while (!entered.load()) std::this_thread::yield();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    release.store(true);
  });
  EXPECT_FALSE(token->cancel_and_wait());  // claim already lost to the timer
  EXPECT_TRUE(finished.load());            // ...but callback has fully run
  releaser.join();
}

TEST(TimerService, CancelAndWaitWinningClaimSuppressesCallback) {
  auto& ts = px::rt::timer_service::instance();
  std::atomic<bool> ran{false};
  auto token = std::make_shared<px::rt::timer_token>();
  ts.call_at(px::rt::timer_service::clock::now() + std::chrono::hours(1),
             [&] { ran.store(true); }, token);
  EXPECT_TRUE(token->cancel_and_wait());  // timer never claimed: instant win
  EXPECT_FALSE(token->is_armed());
  EXPECT_FALSE(ran.load());
}

}  // namespace
