// Tests for the parallel query algorithms and parallel sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "px/px.hpp"
#include "px/support/random.hpp"

namespace {

struct QuerySortTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 4;
    return c;
  }()};
};

TEST_F(QuerySortTest, CountAndCountIf) {
  std::vector<int> v(10000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i % 7);
  auto [threes, evens] = px::sync_wait(rt, [&] {
    return std::make_pair(
        px::parallel::count(px::execution::par, v.begin(), v.end(), 3),
        px::parallel::count_if(px::execution::par, v.begin(), v.end(),
                               [](int x) { return x % 2 == 0; }));
  });
  EXPECT_EQ(threes, static_cast<std::size_t>(
                        std::count(v.begin(), v.end(), 3)));
  EXPECT_EQ(evens, static_cast<std::size_t>(std::count_if(
                       v.begin(), v.end(),
                       [](int x) { return x % 2 == 0; })));
}

TEST_F(QuerySortTest, AllAnyNone) {
  std::vector<int> v(5000, 2);
  auto r = px::sync_wait(rt, [&] {
    bool const all_even = px::parallel::all_of(
        px::execution::par, v.begin(), v.end(),
        [](int x) { return x % 2 == 0; });
    v[4999] = 3;
    bool const any_odd = px::parallel::any_of(
        px::execution::par, v.begin(), v.end(),
        [](int x) { return x % 2 == 1; });
    bool const none_big = px::parallel::none_of(
        px::execution::par, v.begin(), v.end(), [](int x) { return x > 5; });
    return std::make_tuple(all_even, any_odd, none_big);
  });
  EXPECT_TRUE(std::get<0>(r));
  EXPECT_TRUE(std::get<1>(r));
  EXPECT_TRUE(std::get<2>(r));
}

TEST_F(QuerySortTest, MinMaxElement) {
  std::vector<int> v(9999);
  px::xoshiro256ss rng(17);
  for (auto& x : v) x = static_cast<int>(rng.below(1000000));
  v[1234] = -5;
  v[7777] = 2000000;
  auto [mn, mx] = px::sync_wait(rt, [&] {
    auto mn_it =
        px::parallel::min_element(px::execution::par, v.begin(), v.end());
    auto mx_it =
        px::parallel::max_element(px::execution::par, v.begin(), v.end());
    return std::make_pair(mn_it - v.begin(), mx_it - v.begin());
  });
  EXPECT_EQ(mn, 1234);
  EXPECT_EQ(mx, 7777);
}

TEST_F(QuerySortTest, FindIfReturnsFirstMatch) {
  std::vector<int> v(20000, 0);
  v[13777] = 1;
  v[19999] = 1;
  auto idx = px::sync_wait(rt, [&] {
    return px::parallel::find_if(px::execution::par, v.begin(), v.end(),
                                 [](int x) { return x == 1; }) -
           v.begin();
  });
  EXPECT_EQ(idx, 13777);
}

TEST_F(QuerySortTest, FindIfNoMatchReturnsEnd) {
  std::vector<int> v(5000, 0);
  bool at_end = px::sync_wait(rt, [&] {
    return px::parallel::find_if(px::execution::par, v.begin(), v.end(),
                                 [](int x) { return x == 9; }) == v.end();
  });
  EXPECT_TRUE(at_end);
}

TEST_F(QuerySortTest, FindValue) {
  std::vector<int> v(10000);
  std::iota(v.begin(), v.end(), 0);
  auto idx = px::sync_wait(rt, [&] {
    return px::parallel::find(px::execution::par, v.begin(), v.end(),
                              4242) -
           v.begin();
  });
  EXPECT_EQ(idx, 4242);
}

TEST_F(QuerySortTest, FindIfEmptyRange) {
  std::vector<int> v;
  bool at_end = px::sync_wait(rt, [&] {
    return px::parallel::find_if(px::execution::par, v.begin(), v.end(),
                                 [](int) { return true; }) == v.end();
  });
  EXPECT_TRUE(at_end);
}

TEST_F(QuerySortTest, MinElementTieBreaksToFirst) {
  std::vector<int> v(1000, 7);
  auto idx = px::sync_wait(rt, [&] {
    return px::parallel::min_element(px::execution::par, v.begin(),
                                     v.end()) -
           v.begin();
  });
  EXPECT_EQ(idx, 0);
}

class SortSizes : public QuerySortTest,
                  public ::testing::WithParamInterface<std::size_t> {};

TEST_P(SortSizes, SortsRandomData) {
  std::size_t const n = GetParam();
  std::vector<std::uint64_t> v(n);
  px::xoshiro256ss rng(n);
  for (auto& x : v) x = rng();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  px::sync_wait(rt, [&] {
    px::parallel::sort(px::execution::par, v.begin(), v.end());
    return 0;
  });
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 100, 1023, 4096, 50000,
                                           100001));

TEST_F(QuerySortTest, SortWithComparator) {
  std::vector<int> v(20000);
  px::xoshiro256ss rng(3);
  for (auto& x : v) x = static_cast<int>(rng.below(1 << 20));
  px::sync_wait(rt, [&] {
    px::parallel::sort(px::execution::par, v.begin(), v.end(),
                       std::greater<>{});
    return px::parallel::is_sorted(px::execution::par, v.begin(), v.end(),
                                   std::greater<>{});
  });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST_F(QuerySortTest, SortAlreadySorted) {
  std::vector<int> v(30000);
  std::iota(v.begin(), v.end(), 0);
  auto expect = v;
  px::sync_wait(rt, [&] {
    px::parallel::sort(px::execution::par, v.begin(), v.end());
    return 0;
  });
  EXPECT_EQ(v, expect);
}

TEST_F(QuerySortTest, IsSortedDetectsViolation) {
  std::vector<int> v(10000);
  std::iota(v.begin(), v.end(), 0);
  bool sorted_before = false, sorted_after = true;
  px::sync_wait(rt, [&] {
    sorted_before =
        px::parallel::is_sorted(px::execution::par, v.begin(), v.end());
    v[5000] = -1;
    sorted_after =
        px::parallel::is_sorted(px::execution::par, v.begin(), v.end());
    return 0;
  });
  EXPECT_TRUE(sorted_before);
  EXPECT_FALSE(sorted_after);
}

TEST_F(QuerySortTest, SortDuplicateHeavyData) {
  std::vector<int> v(60000);
  px::xoshiro256ss rng(9);
  for (auto& x : v) x = static_cast<int>(rng.below(16));
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  px::sync_wait(rt, [&] {
    px::parallel::sort(px::execution::par, v.begin(), v.end());
    return 0;
  });
  EXPECT_EQ(v, expect);
}

}  // namespace
