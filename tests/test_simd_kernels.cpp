// Tests for the explicitly vectorized stencil kernels: padded VNS
// encode/decode round-trips at arbitrary (odd) row lengths, the seam
// rotations against a scalar neighbour gather on random rows, the
// ABI-preset 2D Jacobi runners against the serial reference and the
// auto-vectorized solver, the VNS 1D heat kernel, unaligned pack ops at
// odd offsets, and the cache-blocked 3D Jacobi (reference agreement,
// block-shape invariance, env knobs, and a seed sweep in the torture
// lane).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "px/px.hpp"
#include "px/stencil/reference.hpp"
#include "px/torture/forall.hpp"
#include "px/stencil/stencil.hpp"

namespace {

using px::simd::pack;
using namespace px::stencil;

px::scheduler_config cfg3() {
  px::scheduler_config c;
  c.num_workers = 3;
  return c;
}

// ---- padded VNS encode/decode -------------------------------------------

TEST(VnsPadded, PacksForIsCeilDiv) {
  namespace vns = px::simd::vns;
  EXPECT_EQ(vns::packs_for(1, 4), 1u);
  EXPECT_EQ(vns::packs_for(4, 4), 1u);
  EXPECT_EQ(vns::packs_for(5, 4), 2u);
  EXPECT_EQ(vns::packs_for(8, 4), 2u);
  EXPECT_EQ(vns::packs_for(17, 16), 2u);
  EXPECT_EQ(vns::packs_for(33, 8), 5u);
}

template <std::size_t W>
void padded_round_trip_case(std::size_t n, std::uint64_t seed) {
  namespace vns = px::simd::vns;
  using P = pack<double, W>;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  std::vector<double> src(n);
  for (auto& v : src) v = dist(rng);

  std::size_t const nv = vns::packs_for(n, W);
  double const pad = -77.5;
  std::vector<P> packs(nv);
  vns::encode_padded(std::span<double const>(src), packs.data(), nv, pad);

  // Every real scalar sits at its canonical VNS coordinate; every padding
  // position holds the pad value.
  for (std::size_t x = 0; x < W * nv; ++x) {
    double const got = packs[vns::slot_of(x, nv)].v[vns::lane_of(x, nv)];
    if (x < n) {
      ASSERT_EQ(got, src[x]) << "n=" << n << " W=" << W << " x=" << x;
    } else {
      ASSERT_EQ(got, pad) << "n=" << n << " W=" << W << " x=" << x;
    }
  }

  std::vector<double> out(n, 0.0);
  vns::decode_padded(packs.data(), std::span<double>(out), nv);
  ASSERT_EQ(out, src) << "n=" << n << " W=" << W;
}

TEST(VnsPadded, EncodeDecodeRoundTripArbitrarySizes) {
  std::uint64_t seed = 0x5eed;
  for (std::size_t n : {1, 2, 3, 5, 7, 9, 15, 17, 31, 33, 51, 63, 65}) {
    padded_round_trip_case<4>(n, seed++);
    padded_round_trip_case<8>(n, seed++);
    padded_round_trip_case<16>(n, seed++);
  }
}

// ---- seam orientation vs scalar neighbour gather ------------------------

// Property: for a random row s[0..W*nv), the pack-level neighbour scheme
// (whole-pack neighbours plus left_seam/right_seam at the segment seams)
// must deliver, lane for lane, exactly the scalars a serial gather of
// s[x-1] / s[x+1] delivers (with the ghosts outside the row).
template <std::size_t W>
void seam_gather_case(std::size_t nv, std::uint64_t seed) {
  namespace vns = px::simd::vns;
  using P = pack<double, W>;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-8.0, 8.0);
  std::size_t const n = W * nv;
  std::vector<double> s(n);
  for (auto& v : s) v = dist(rng);
  double const left_ghost = dist(rng);
  double const right_ghost = dist(rng);

  std::vector<P> packs(nv);
  vns::encode(std::span<double const>(s), packs.data(), nv);
  P const lseam = vns::left_seam(packs[nv - 1], left_ghost);
  P const rseam = vns::right_seam(packs[0], right_ghost);

  for (std::size_t x = 0; x < n; ++x) {
    std::size_t const j = vns::slot_of(x, nv);
    std::size_t const l = vns::lane_of(x, nv);
    double const want_left = x == 0 ? left_ghost : s[x - 1];
    double const want_right = x + 1 == n ? right_ghost : s[x + 1];
    double const got_left = (j == 0 ? lseam : packs[j - 1]).v[l];
    double const got_right = (j + 1 == nv ? rseam : packs[j + 1]).v[l];
    ASSERT_EQ(got_left, want_left)
        << "left of x=" << x << " nv=" << nv << " W=" << W;
    ASSERT_EQ(got_right, want_right)
        << "right of x=" << x << " nv=" << nv << " W=" << W;
  }
}

TEST(VnsSeams, MatchScalarNeighbourGatherOnRandomRows) {
  std::uint64_t seed = 0xface;
  for (std::size_t nv : {1, 2, 3, 5, 8, 13}) {
    seam_gather_case<2>(nv, seed++);
    seam_gather_case<4>(nv, seed++);
    seam_gather_case<8>(nv, seed++);
    seam_gather_case<16>(nv, seed++);
  }
}

// ---- unaligned pack ops at odd offsets ----------------------------------

// The stencil kernels index interior rows from offset 1, so nearly every
// pack access is misaligned; the alignment audit requires those sites to
// use the unaligned ops. Pin that load/store round-trips at every in-pack
// offset (an aligned move on these pointers would be UB under AVX-512).
template <typename T, std::size_t W>
void unaligned_offsets_case() {
  using P = pack<T, W>;
  alignas(P::alignment) T buf[3 * W];
  alignas(P::alignment) T out[3 * W];
  for (std::size_t i = 0; i < 3 * W; ++i) buf[i] = T(i) * T(0.5);
  for (std::size_t off = 0; off < W; ++off) {
    P const v = px::simd::load_unaligned<P>(buf + off);
    for (std::size_t l = 0; l < W; ++l)
      ASSERT_EQ(v.v[l], buf[off + l]) << "off=" << off << " lane=" << l;
    for (auto& x : out) x = T(-1);
    px::simd::store_unaligned(out + off, v);
    for (std::size_t l = 0; l < W; ++l)
      ASSERT_EQ(out[off + l], buf[off + l]) << "off=" << off;
  }
}

TEST(SimdAlignment, UnalignedLoadStoreRoundTripsAtEveryOffset) {
  unaligned_offsets_case<float, 4>();
  unaligned_offsets_case<float, 8>();
  unaligned_offsets_case<float, 16>();
  unaligned_offsets_case<double, 2>();
  unaligned_offsets_case<double, 4>();
  unaligned_offsets_case<double, 8>();
}

// ---- field2d padded segments (odd nx) -----------------------------------

TEST(Field2dPadded, OddNxGetSetRoundTrip) {
  field2d<pack<double, 4>> f(5, 3);  // cells() = 2, padding() = 3
  EXPECT_EQ(f.cells(), 2u);
  EXPECT_EQ(f.padding(), 3u);
  for (std::size_t y = 0; y < 3; ++y)
    for (std::size_t x = 0; x < 5; ++x)
      f.set(x, y, double(10 * y + x));
  for (std::size_t y = 0; y < 3; ++y)
    for (std::size_t x = 0; x < 5; ++x)
      ASSERT_EQ(f.get(x, y), double(10 * y + x)) << x << "," << y;
}

TEST(Field2dPadded, RefreshPinsFirstPaddedScalarToRightGhost) {
  namespace vns = px::simd::vns;
  // nx=5, W=4 -> cells()=2, s[5] sits in lane 2 of the *first* interior
  // pack (slot_of(5, 2) = 1 ... check both a slot-0 and a slot-1 case).
  for (std::size_t nx : {5, 6, 7}) {
    field2d<pack<double, 4>> f(nx, 2);
    init_dirichlet_problem(f);
    f.set_right_boundary(0, 3.5);
    f.refresh_row_halos(1);
    auto const* r = f.row(1);
    std::size_t const nv = f.cells();
    ASSERT_EQ(r[1 + vns::slot_of(nx, nv)].v[vns::lane_of(nx, nv)], 3.5)
        << "nx=" << nx;
  }
}

// ---- 2D Jacobi: VNS runners vs reference and auto -----------------------

std::vector<double> reference_initial(std::size_t nx, std::size_t ny) {
  std::vector<double> u((nx + 2) * (ny + 2), 0.0);
  for (std::size_t y = 0; y < ny + 2; ++y) {
    u[y * (nx + 2)] = 1.0;
    u[y * (nx + 2) + nx + 1] = 1.0;
  }
  for (std::size_t x = 0; x < nx + 2; ++x) {
    u[x] = 1.0;
    u[(ny + 1) * (nx + 2) + x] = 1.0;
  }
  return u;
}

template <typename T>
void vns_vs_reference_case(vns_abi abi, std::size_t nx, std::size_t ny,
                           std::size_t steps) {
  field2d<T> initial(nx, ny);
  init_dirichlet_problem(initial);
  auto const run =
      run_jacobi2d_vns<T>(px::execution::seq, abi, initial, steps);
  auto const ref = reference_jacobi2d(reference_initial(nx, ny), nx, ny,
                                      steps);
  double const tol = std::is_same_v<T, float> ? 2e-5 : 1e-12;
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_NEAR(static_cast<double>(run.interior[y * nx + x]),
                  ref[(y + 1) * (nx + 2) + x + 1], tol)
          << vns_abi_name(abi) << " x=" << x << " y=" << y;
}

TEST(Jacobi2dVns, AllPresetsMatchReferenceAtOddSizesFloat) {
  for (vns_abi abi : vns_abi_presets) {
    vns_vs_reference_case<float>(abi, 5, 3, 8);
    vns_vs_reference_case<float>(abi, 17, 6, 10);
    vns_vs_reference_case<float>(abi, 33, 7, 12);
    vns_vs_reference_case<float>(abi, 51, 4, 9);
  }
}

TEST(Jacobi2dVns, AllPresetsMatchReferenceAtOddSizesDouble) {
  for (vns_abi abi : vns_abi_presets) {
    vns_vs_reference_case<double>(abi, 5, 3, 8);
    vns_vs_reference_case<double>(abi, 17, 6, 10);
    vns_vs_reference_case<double>(abi, 33, 7, 12);
    vns_vs_reference_case<double>(abi, 51, 4, 9);
  }
}

TEST(Jacobi2dVns, PackAndAutoBitwiseIdenticalForDoubles) {
  // Identical expression per element, mul-last (no FMA contraction), so
  // doubles must agree bitwise with the scalar-cell (auto-vectorized)
  // solver at every preset width, including odd nx with padded segments.
  px::runtime rt(cfg3());
  for (vns_abi abi : vns_abi_presets) {
    for (std::size_t nx : {32, 33}) {
      field2d<double> initial(nx, 10);
      init_dirichlet_problem(initial);
      auto [vns_run, auto_run] = px::sync_wait(rt, [&] {
        return std::make_pair(
            run_jacobi2d_vns<double>(px::execution::par, abi, initial, 25),
            run_jacobi2d_auto<double>(px::execution::par, initial, 25));
      });
      ASSERT_EQ(vns_run.interior.size(), auto_run.interior.size());
      for (std::size_t i = 0; i < vns_run.interior.size(); ++i)
        ASSERT_EQ(vns_run.interior[i], auto_run.interior[i])
            << vns_abi_name(abi) << " nx=" << nx << " i=" << i;
    }
  }
}

TEST(Jacobi2dVns, AbiParsingAndLanes) {
  EXPECT_EQ(parse_vns_abi("avx2"), vns_abi::avx2);
  EXPECT_EQ(parse_vns_abi("neon128"), vns_abi::neon128);
  EXPECT_EQ(parse_vns_abi("sve512"), vns_abi::sve512);
  EXPECT_EQ(parse_vns_abi("native"), vns_abi::native);
  EXPECT_FALSE(parse_vns_abi("AVX2").has_value());
  EXPECT_FALSE(parse_vns_abi("avx512").has_value());
  EXPECT_FALSE(parse_vns_abi("").has_value());
  EXPECT_EQ(vns_abi_vector_bits(vns_abi::neon128), 128u);
  EXPECT_EQ(vns_abi_vector_bits(vns_abi::avx2), 256u);
  EXPECT_EQ(vns_abi_vector_bits(vns_abi::sve512), 512u);
  EXPECT_EQ(vns_abi_lanes<float>(vns_abi::sve512), 16u);
  EXPECT_EQ(vns_abi_lanes<double>(vns_abi::avx2), 4u);
  EXPECT_EQ(std::string(vns_abi_name(vns_abi::sve512)), "sve512");
}

// ---- 1D heat: VNS row kernel --------------------------------------------

// Tolerance, not bitwise: the heat update c + k*(l - 2c + r) ends in an
// add, so FMA contraction can differ between the pack and scalar builds.
template <std::size_t W>
void heat_vns_case(std::size_t nx, std::size_t steps) {
  auto const initial = heat1d_sine_initial(nx);
  double const k = 0.1;
  auto const got = run_heat1d_vns<double, W>(
      std::span<double const>(initial), steps, k);
  auto const ref = reference_heat1d(initial, steps, k);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t x = 0; x < nx; ++x)
    ASSERT_NEAR(got[x], ref[x], 1e-12) << "nx=" << nx << " x=" << x;
}

TEST(Heat1dVns, MatchesReferenceIncludingOddSizes) {
  for (std::size_t nx : {5, 17, 33, 64, 101}) {
    heat_vns_case<4>(nx, 50);
    heat_vns_case<8>(nx, 50);
  }
}

TEST(Heat1dVns, AutovecBaselineMatchesReference) {
  auto const initial = heat1d_sine_initial(65);
  auto const got =
      run_heat1d_autovec<double>(std::span<double const>(initial), 40, 0.1);
  auto const ref = reference_heat1d(initial, 40, 0.1);
  for (std::size_t x = 0; x < got.size(); ++x)
    ASSERT_NEAR(got[x], ref[x], 1e-12) << "x=" << x;
}

// ---- 3D blocked Jacobi --------------------------------------------------

std::vector<double> reference_initial3d(std::size_t nx, std::size_t ny,
                                        std::size_t nz) {
  field3d<double> f(nx, ny, nz);
  init_dirichlet_problem3d(f);
  std::vector<double> u((nx + 2) * (ny + 2) * (nz + 2));
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz + 2; ++z)
    for (std::size_t y = 0; y < ny + 2; ++y)
      for (std::size_t x = 0; x < nx + 2; ++x) u[i++] = f.at(x, y, z);
  return u;
}

std::vector<double> run_blocked3d(px::runtime& rt, std::size_t nx,
                                  std::size_t ny, std::size_t nz,
                                  jacobi3d_config cfg) {
  field3d<double> u0(nx, ny, nz), u1(nx, ny, nz);
  init_dirichlet_problem3d(u0);
  init_dirichlet_problem3d(u1);
  auto const r = px::sync_wait(rt, [&] {
    return run_jacobi3d_blocked(px::execution::par, u0, u1, cfg);
  });
  return interior_snapshot3d(r.final_index == 0 ? u0 : u1);
}

TEST(Jacobi3dBlocked, MatchesReferenceBitwiseDouble) {
  // Mul-last expression in the same association order as the reference:
  // doubles agree bitwise.
  px::runtime rt(cfg3());
  constexpr std::size_t nx = 20, ny = 12, nz = 8, steps = 3;
  jacobi3d_config cfg;
  cfg.steps = steps;
  auto const got = run_blocked3d(rt, nx, ny, nz, cfg);
  auto const ref = reference_jacobi3d(reference_initial3d(nx, ny, nz), nx,
                                      ny, nz, steps);
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x)
        ASSERT_EQ(got[(z * ny + y) * nx + x],
                  ref[((z + 1) * (ny + 2) + y + 1) * (nx + 2) + x + 1])
            << x << "," << y << "," << z;
}

TEST(Jacobi3dBlocked, BlockShapeAndSimdPathInvariant) {
  // Jacobi has no intra-sweep dependencies: every block shape and both
  // inner-loop paths must produce bitwise identical doubles.
  px::runtime rt(cfg3());
  constexpr std::size_t nx = 21, ny = 10, nz = 6;
  jacobi3d_config base;
  base.steps = 4;
  auto const want = run_blocked3d(rt, nx, ny, nz, base);

  jacobi3d_config variants[4] = {base, base, base, base};
  variants[0].block_x = 7;
  variants[0].block_y = 3;
  variants[0].block_z = 2;
  variants[1].block_x = 1;
  variants[1].block_y = 1;
  variants[1].block_z = 1;
  variants[2].block_x = 64;
  variants[2].block_y = 64;
  variants[2].block_z = 64;
  variants[3].explicit_simd = true;
  for (auto const& cfg : variants) {
    auto const got = run_blocked3d(rt, nx, ny, nz, cfg);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], want[i])
          << "i=" << i << " bx=" << cfg.block_x << " by=" << cfg.block_y
          << " bz=" << cfg.block_z << " simd=" << cfg.explicit_simd;
  }
}

TEST(Jacobi3dBlocked, ConfigFromEnvAppliesStrictKnobs) {
  ::setenv("PX_SIMD_BLOCK_X", "8", 1);
  ::setenv("PX_SIMD_BLOCK_Y", "3", 1);
  ::setenv("PX_SIMD_BLOCK_Z", "junk", 1);  // malformed: leaves base value
  jacobi3d_config base;
  base.block_z = 5;
  auto const cfg = jacobi3d_config::from_env(base);
  ::unsetenv("PX_SIMD_BLOCK_X");
  ::unsetenv("PX_SIMD_BLOCK_Y");
  ::unsetenv("PX_SIMD_BLOCK_Z");
  EXPECT_EQ(cfg.block_x, 8u);
  EXPECT_EQ(cfg.block_y, 3u);
  EXPECT_EQ(cfg.block_z, 5u);
  auto const clean = jacobi3d_config::from_env(base);
  EXPECT_EQ(clean.block_x, 0u);
  EXPECT_EQ(clean.block_y, 0u);
  EXPECT_EQ(clean.block_z, 5u);
}

// ---- torture lane: seed sweep of the 3D blocked kernel ------------------

TEST(SimdTorture, Jacobi3dBlockedSeedSweep) {
  namespace torture = px::torture;
  torture::forall_options opts;
  opts.dump_stem = "torture-simd";
  auto const r = torture::forall_seeds(
      torture::seed_count(16), [](std::uint64_t seed) {
        std::mt19937_64 rng(seed);
        auto pick = [&](std::size_t lo, std::size_t hi) {
          return lo + rng() % (hi - lo + 1);
        };
        std::size_t const nx = pick(3, 24);
        std::size_t const ny = pick(3, 16);
        std::size_t const nz = pick(3, 12);
        jacobi3d_config cfg;
        cfg.steps = pick(1, 3);
        cfg.block_x = pick(0, 9);
        cfg.block_y = pick(0, 6);
        cfg.block_z = pick(0, 4);
        cfg.explicit_simd = (rng() & 1) != 0;

        px::runtime rt(cfg3());
        auto const got = run_blocked3d(rt, nx, ny, nz, cfg);
        auto const ref = reference_jacobi3d(
            reference_initial3d(nx, ny, nz), nx, ny, nz, cfg.steps);
        for (std::size_t z = 0; z < nz; ++z)
          for (std::size_t y = 0; y < ny; ++y)
            for (std::size_t x = 0; x < nx; ++x) {
              double const g = got[(z * ny + y) * nx + x];
              double const w =
                  ref[((z + 1) * (ny + 2) + y + 1) * (nx + 2) + x + 1];
              if (g != w)
                throw std::runtime_error(
                    "blocked 3D kernel diverged from reference at (" +
                    std::to_string(x) + "," + std::to_string(y) + "," +
                    std::to_string(z) + "): " + std::to_string(g) +
                    " vs " + std::to_string(w) + " [nx=" +
                    std::to_string(nx) + " ny=" + std::to_string(ny) +
                    " nz=" + std::to_string(nz) + " bx=" +
                    std::to_string(cfg.block_x) + " by=" +
                    std::to_string(cfg.block_y) + " bz=" +
                    std::to_string(cfg.block_z) + " simd=" +
                    std::to_string(cfg.explicit_simd) + "]");
            }
      },
      opts);
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
