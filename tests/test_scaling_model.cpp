// Tests pinning the scaling models to the paper's §VII results: the 1D
// distributed headline numbers and the qualitative shapes of Figs 3-8.
#include <gtest/gtest.h>

#include "px/arch/scaling_model.hpp"

namespace {

using namespace px::arch;

// ---- Fig 3 / §VII-A: 1D distributed scaling --------------------------------

TEST(Heat1dModel, XeonStrongScalingHeadlineNumbers) {
  machine m = xeon_e5_2660v3();
  // "the application takes 28s ... for a single node and 3.8s ...
  // involving eight nodes ... the factor being 7.36"
  EXPECT_NEAR(heat1d_strong_time_s(m, 1), 28.0, 0.3);
  EXPECT_NEAR(heat1d_strong_time_s(m, 8), 3.8, 0.1);
  EXPECT_NEAR(heat1d_strong_scaling_factor(m, 8), 7.36, 0.1);
}

TEST(Heat1dModel, A64FXStrongScalingHeadlineNumbers) {
  machine m = a64fx();
  // "18s ... and 2.5s ... the factor being 7.2"
  EXPECT_NEAR(heat1d_strong_time_s(m, 1), 18.0, 0.2);
  EXPECT_NEAR(heat1d_strong_time_s(m, 8), 2.5, 0.1);
  EXPECT_NEAR(heat1d_strong_scaling_factor(m, 8), 7.2, 0.15);
}

TEST(Heat1dModel, WeakScalingIsFlatOnCapableNetworks) {
  // "the application takes 12s and 7.5s respectively irrespective of the
  // number of nodes"
  EXPECT_NEAR(heat1d_weak_time_s(xeon_e5_2660v3(), 8), 12.0, 0.3);
  EXPECT_NEAR(heat1d_weak_time_s(a64fx(), 8), 7.5, 0.2);
  for (auto const& m : {xeon_e5_2660v3(), a64fx(), thunderx2()}) {
    double const t2 = heat1d_weak_time_s(m, 2);
    double const t8 = heat1d_weak_time_s(m, 8);
    EXPECT_NEAR(t8 / t2, 1.0, 0.05) << m.short_name;  // flat
  }
}

TEST(Heat1dModel, KunpengDoesNotScale) {
  machine m = kunpeng916();
  // Strong scaling well below linear.
  EXPECT_LT(heat1d_strong_scaling_factor(m, 8), 5.0);
  // Weak scaling rises significantly with node count.
  double const t1 = heat1d_weak_time_s(m, 1);
  double const t8 = heat1d_weak_time_s(m, 8);
  EXPECT_GT(t8 / t1, 1.5);
  // And monotonically.
  for (std::size_t n = 2; n <= 8; ++n)
    EXPECT_GT(heat1d_weak_time_s(m, n), heat1d_weak_time_s(m, n - 1));
}

TEST(Heat1dModel, StrongScalingMonotoneForAllMachines) {
  for (auto const& m : paper_machines())
    for (std::size_t n = 2; n <= 8; ++n)
      EXPECT_LT(heat1d_strong_time_s(m, n), heat1d_strong_time_s(m, n - 1))
          << m.short_name << " nodes " << n;
}

TEST(Heat1dModel, A64FXIsFasterThanXeonEverywhere) {
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_LT(heat1d_strong_time_s(a64fx(), n),
              heat1d_strong_time_s(xeon_e5_2660v3(), n));
    EXPECT_LT(heat1d_weak_time_s(a64fx(), n),
              heat1d_weak_time_s(xeon_e5_2660v3(), n));
  }
}

// ---- Figs 4-8 / §VII-B: 2D stencil ------------------------------------------

TEST(Stencil2dModel, ExplicitVectorizationNeverLoses) {
  for (auto const& m : paper_machines()) {
    stencil2d_model model(m);
    for (std::size_t c = 1; c <= m.total_cores(); c += 3) {
      EXPECT_GE(model.glups(c, 4, true), model.glups(c, 4, false) - 1e-9)
          << m.short_name << " float cores " << c;
      EXPECT_GE(model.glups(c, 8, true), model.glups(c, 8, false) - 1e-9)
          << m.short_name << " double cores " << c;
    }
  }
}

TEST(Stencil2dModel, ExplicitGainsMatchPaperAtFullNode) {
  auto gain = [](machine const& m, std::size_t bytes) {
    stencil2d_model model(m);
    std::size_t const c = m.total_cores();
    return model.glups(c, bytes, true) / model.glups(c, bytes, false);
  };
  // Xeon: "up to 50% with vectorized floats", "only up to 10% ... doubles"
  EXPECT_NEAR(gain(xeon_e5_2660v3(), 4), 1.5, 0.1);
  EXPECT_NEAR(gain(xeon_e5_2660v3(), 8), 1.1, 0.05);
  // Kunpeng: "up to 80% improvements with explicit vectorization"
  EXPECT_NEAR(gain(kunpeng916(), 4), 1.8, 0.1);
  // TX2: "consistently within 50-60% for floats and up to 40% for doubles"
  EXPECT_GE(gain(thunderx2(), 4), 1.45);
  EXPECT_LE(gain(thunderx2(), 4), 1.65);
  EXPECT_LE(gain(thunderx2(), 8), 1.45);
  // A64FX: "improvements are anywhere from 5% to 15%"
  EXPECT_GE(gain(a64fx(), 4), 1.04);
  EXPECT_LE(gain(a64fx(), 4), 1.16);
}

TEST(Stencil2dModel, CacheBlockingMachinesPayTwoTransfers) {
  EXPECT_EQ(stencil2d_model(a64fx()).transfers_per_lup(4, 48), 2u);
  EXPECT_EQ(stencil2d_model(a64fx()).transfers_per_lup(8, 1), 2u);
  EXPECT_EQ(stencil2d_model(thunderx2()).transfers_per_lup(4, 1), 2u);
  EXPECT_EQ(stencil2d_model(xeon_e5_2660v3()).transfers_per_lup(4, 20), 3u);
  EXPECT_EQ(stencil2d_model(kunpeng916()).transfers_per_lup(8, 64), 3u);
}

TEST(Stencil2dModel, TX2DoubleAISwitchAt16Cores) {
  // "At 16 cores and above, the behavior changes to an arithmetic
  // intensity of ... 1/16 for doubles."
  stencil2d_model model(thunderx2());
  EXPECT_EQ(model.transfers_per_lup(8, 8), 3u);
  EXPECT_EQ(model.transfers_per_lup(8, 15), 3u);
  EXPECT_EQ(model.transfers_per_lup(8, 16), 2u);
  EXPECT_EQ(model.transfers_per_lup(8, 32), 2u);
  // The switch shows as a visible jump in the double curves.
  double const before = model.glups(15, 8, true);
  double const after = model.glups(16, 8, true);
  EXPECT_GT(after / before, 1.2);
}

TEST(Stencil2dModel, ResultsSitBetweenExpectedPeaks) {
  // On the cache-blocking machines the measured curves land above the
  // 3-transfer "min" line and below the 2-transfer "max" line (Figs 6, 8).
  for (auto const& m : {a64fx(), thunderx2()}) {
    stencil2d_model model(m);
    std::size_t const c = m.total_cores();
    for (std::size_t bytes : {4u, 8u}) {
      double const perf = model.glups(c, bytes, true);
      EXPECT_GT(perf, model.expected_peak_min_glups(c, bytes))
          << m.short_name;
      EXPECT_LE(perf, model.expected_peak_max_glups(c, bytes) + 1e-9)
          << m.short_name;
    }
  }
}

TEST(Stencil2dModel, CacheBlockingBoostIs49Percent) {
  // "This results in a 49% performance boost over the previously expected
  // results" — the ratio of the two peak lines.
  stencil2d_model model(a64fx());
  double const ratio = model.expected_peak_max_glups(48, 4) /
                       model.expected_peak_min_glups(48, 4);
  EXPECT_NEAR(ratio, 1.5, 0.02);
}

TEST(Stencil2dModel, KunpengNUMADipsAppearInTheCurves) {
  stencil2d_model model(kunpeng916());
  EXPECT_LT(model.glups(40, 4, true), model.glups(32, 4, true));
  EXPECT_GT(model.glups(48, 4, true), model.glups(32, 4, true));
  EXPECT_LT(model.glups(64, 4, true), model.glups(56, 4, true));
}

TEST(Stencil2dModel, A64FXHeadlineTimes) {
  // §VII-B: "execution time ... less than 2s for scalar and vector floats
  // and about 3.5s for scalar and vector doubles" (8192x131072, 100 steps,
  // 48 cores).
  stencil2d_model model(a64fx());
  EXPECT_LT(model.run_time_s(48, 8192, 131072, 100, 4, true), 2.0);
  EXPECT_LT(model.run_time_s(48, 8192, 131072, 100, 4, false), 2.4);
  EXPECT_NEAR(model.run_time_s(48, 8192, 131072, 100, 8, true), 3.5, 1.0);
}

TEST(Stencil2dModel, FloatAlwaysBeatsDouble) {
  for (auto const& m : paper_machines()) {
    stencil2d_model model(m);
    std::size_t const c = m.total_cores();
    EXPECT_GT(model.glups(c, 4, true), model.glups(c, 8, true))
        << m.short_name;
  }
}

TEST(Stencil2dModel, SinglePrecisionConvergesTowardMemoryRoof) {
  // At full node every machine is memory bound: performance is within the
  // 2x band below its expected peak (max for blocking machines, min else).
  for (auto const& m : paper_machines()) {
    stencil2d_model model(m);
    std::size_t const c = m.total_cores();
    double const roof = m.inherent_cache_blocking
                            ? model.expected_peak_max_glups(c, 4)
                            : model.expected_peak_min_glups(c, 4);
    // Kunpeng's full-occupancy penalty pushes it just below half its roof.
    EXPECT_GT(model.glups(c, 4, true), 0.44 * roof) << m.short_name;
  }
}

TEST(Stencil2dModel, LargerA64FXGridShowsNoBenefit) {
  // Fig 7: 8192x196608 performs like 8192x131072 — per-LUP rate is grid
  // independent in the model (and in the paper's measurement).
  stencil2d_model model(a64fx());
  double const t_small = model.run_time_s(48, 8192, 131072, 100, 4, true);
  double const t_large = model.run_time_s(48, 8192, 196608, 100, 4, true);
  EXPECT_NEAR(t_large / t_small, 196608.0 / 131072.0, 1e-9);
}

TEST(Stencil2dModel, Fig7GridStillFitsHBM) {
  // "our grid requires 9GB worth of DRAM. A 2D stencil code has two grids,
  // i.e., 18GB" — the larger grid must still fit in the 32 GB HBM2.
  double const bytes_small = 2.0 * 8192.0 * 131072.0 * 8.0;
  double const bytes_large = 2.0 * 8192.0 * 196608.0 * 8.0;
  EXPECT_NEAR(bytes_small / 1e9, 17.2, 0.5);  // ~ the paper's 18 GB
  EXPECT_LT(bytes_large / 1e9, a64fx().memory_capacity_gb);
  // And nothing bigger than ~1.5x fits, as the paper notes.
  EXPECT_GT(1.6 * bytes_small / 1e9, a64fx().memory_capacity_gb * 0.8);
}

}  // namespace
