// Tests for the parcel subsystem: action registration, remote invocation
// with and without results, locality-aware actions, exception propagation,
// fire-and-forget, migration, and fabric accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "px/dist/distributed_domain.hpp"
#include "px/dist/migration.hpp"

namespace {

std::atomic<int> poke_count{0};

int add_action(int a, int b) { return a + b; }
int where_am_i(px::dist::locality& here, int x) {
  return static_cast<int>(here.id()) * 1000 + x;
}
void poke_action() { poke_count.fetch_add(1); }
int throwing_action(int) { throw std::runtime_error("remote boom"); }
std::vector<double> vector_echo(std::vector<double> v) {
  for (auto& x : v) x *= 2.0;
  return v;
}
std::string concat_action(std::string a, std::string b) { return a + b; }

struct migratable_counter {
  long value = 0;
  std::string label;
  template <typename Archive>
  void serialize(Archive& ar) {
    ar& value& label;
  }
};

}  // namespace

PX_REGISTER_ACTION(add_action)
PX_REGISTER_ACTION(where_am_i)
PX_REGISTER_ACTION(poke_action)
PX_REGISTER_ACTION(throwing_action)
PX_REGISTER_ACTION(vector_echo)
PX_REGISTER_ACTION(concat_action)
PX_REGISTER_MIGRATABLE(migratable_counter)

namespace {

px::dist::domain_config test_domain(std::size_t n,
                                    double injection_scale = 0.0001) {
  px::dist::domain_config cfg;
  cfg.num_localities = n;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = injection_scale;
  return cfg;
}

TEST(ActionRegistry, RegistrationAssignsStableIds) {
  auto& reg = px::parcel::action_registry::instance();
  auto const id = reg.id_of("add_action");
  EXPECT_GT(id, 0u);
  EXPECT_EQ(reg.name(id), "add_action");
  EXPECT_NE(reg.handler(id), nullptr);
  // Re-registration is idempotent.
  EXPECT_EQ(px::parcel::action_traits<&add_action>::id, id);
}

TEST(ActionRegistry, UnknownActionThrows) {
  auto& reg = px::parcel::action_registry::instance();
  EXPECT_THROW((void)reg.handler(100000), std::out_of_range);
  EXPECT_EQ(reg.id_of("no_such_action"), 0u);
}

TEST(Parcel, CallReturnsRemoteResult) {
  px::dist::distributed_domain dom(test_domain(2));
  int r = dom.run([](px::dist::locality& loc0) {
    return loc0.call<&add_action>(1, 20, 22).get();
  });
  EXPECT_EQ(r, 42);
}

TEST(Parcel, LocalityAwareActionSeesDestination) {
  px::dist::distributed_domain dom(test_domain(3));
  auto r = dom.run([](px::dist::locality& loc0) {
    auto f1 = loc0.call<&where_am_i>(1, 5);
    auto f2 = loc0.call<&where_am_i>(2, 5);
    auto self = loc0.call<&where_am_i>(0, 5);
    return std::make_tuple(f1.get(), f2.get(), self.get());
  });
  EXPECT_EQ(std::get<0>(r), 1005);
  EXPECT_EQ(std::get<1>(r), 2005);
  EXPECT_EQ(std::get<2>(r), 5);
}

TEST(Parcel, ApplyIsFireAndForget) {
  poke_count.store(0);
  px::dist::distributed_domain dom(test_domain(2));
  dom.run([](px::dist::locality& loc0) {
    for (int i = 0; i < 10; ++i) loc0.apply<&poke_action>(1);
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(poke_count.load(), 10);
}

TEST(Parcel, RemoteExceptionPropagatesToCaller) {
  px::dist::distributed_domain dom(test_domain(2));
  bool caught = dom.run([](px::dist::locality& loc0) {
    try {
      loc0.call<&throwing_action>(1, 0).get();
      return false;
    } catch (std::runtime_error const& e) {
      return std::string(e.what()).find("remote boom") != std::string::npos;
    }
  });
  EXPECT_TRUE(caught);
}

TEST(Parcel, LargePayloadRoundtrip) {
  px::dist::distributed_domain dom(test_domain(2));
  double sum = dom.run([](px::dist::locality& loc0) {
    std::vector<double> v(10000);
    std::iota(v.begin(), v.end(), 0.0);
    auto doubled = loc0.call<&vector_echo>(1, std::move(v)).get();
    return std::accumulate(doubled.begin(), doubled.end(), 0.0);
  });
  EXPECT_DOUBLE_EQ(sum, 2.0 * (9999.0 * 10000.0 / 2.0));
}

TEST(Parcel, ManyConcurrentCalls) {
  px::dist::distributed_domain dom(test_domain(4));
  long total = dom.run([](px::dist::locality& loc0) {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 100; ++i)
      futs.push_back(loc0.call<&add_action>(
          static_cast<std::uint32_t>(i % 4), i, 1));
    long sum = 0;
    for (auto& f : futs) sum += f.get();
    return sum;
  });
  EXPECT_EQ(total, 100L * 99 / 2 + 100);
}

TEST(Parcel, StringArguments) {
  px::dist::distributed_domain dom(test_domain(2));
  auto r = dom.run([](px::dist::locality& loc0) {
    return loc0.call<&concat_action>(1, std::string("foo"),
                                     std::string("bar")).get();
  });
  EXPECT_EQ(r, "foobar");
}

TEST(Parcel, FabricCountsInterLocalityTrafficOnly) {
  px::dist::distributed_domain dom(test_domain(2));
  dom.run([](px::dist::locality& loc0) {
    loc0.call<&add_action>(0, 1, 1).get();  // intra-node: free
    return 0;
  });
  dom.wait_all_quiescent();
  auto const free_msgs = dom.fabric().counters().messages.load();
  EXPECT_EQ(free_msgs, 0u);

  dom.run([](px::dist::locality& loc0) {
    loc0.call<&add_action>(1, 1, 1).get();  // remote: request + response
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(dom.fabric().counters().messages.load(), 2u);
  EXPECT_GT(dom.fabric().counters().bytes.load(), 0u);
  EXPECT_GT(dom.fabric().counters().modeled_us(), 0.0);
}

TEST(Parcel, ParcelsHandledCounterAdvances) {
  px::dist::distributed_domain dom(test_domain(2));
  dom.run([](px::dist::locality& loc0) {
    loc0.call<&add_action>(1, 1, 2).get();
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_GE(dom.at(1).parcels_handled(), 1u);
  EXPECT_GE(dom.at(0).parcels_handled(), 1u);  // the response
}

TEST(Migration, MovesObjectAndUpdatesResidence) {
  px::dist::distributed_domain dom(test_domain(3));
  auto moved_gid = dom.run([](px::dist::locality& loc0) {
    auto obj = std::make_shared<migratable_counter>();
    obj->value = 77;
    obj->label = "it";
    auto g = loc0.agas().bind(obj);
    auto ng = px::dist::migrate<migratable_counter>(loc0, g, 2).get();
    // Departed from here:
    PX_ASSERT(!loc0.agas().contains(g));
    return ng;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(moved_gid.locality(), 2u);
  auto resolved = dom.at(2).agas().resolve<migratable_counter>(moved_gid);
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->value, 77);
  EXPECT_EQ(resolved->label, "it");
}

TEST(Migration, MigrateToSelfIsNoop) {
  px::dist::distributed_domain dom(test_domain(2));
  bool ok = dom.run([](px::dist::locality& loc0) {
    auto g = loc0.agas().bind(std::make_shared<migratable_counter>());
    auto ng = px::dist::migrate<migratable_counter>(loc0, g, 0).get();
    return ng == g && loc0.agas().contains(g);
  });
  EXPECT_TRUE(ok);
}

TEST(Migration, UnknownGidFails) {
  px::dist::distributed_domain dom(test_domain(2));
  bool threw = dom.run([](px::dist::locality& loc0) {
    auto f = px::dist::migrate<migratable_counter>(
        loc0, px::agas::gid::make(0, 424242), 1);
    try {
      f.get();
      return false;
    } catch (std::runtime_error const&) {
      return true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST(Fabric, InjectedDelayStillDelivers) {
  // A visible injection scale: parcels take ~ms but everything completes.
  px::dist::distributed_domain dom(test_domain(2, /*injection_scale=*/100.0));
  int r = dom.run([](px::dist::locality& loc0) {
    return loc0.call<&add_action>(1, 2, 3).get();
  });
  EXPECT_EQ(r, 5);
}

}  // namespace
