// Tests for px::counters: path registration/lookup, RAII unregistration,
// builtin cells, monotonicity under multi-worker load, snapshot
// consistency, delta semantics, JSON/CSV round-trips, and the hot-path
// no-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>
#include <string>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/lcos/async.hpp"
#include "px/parallel/algorithms.hpp"
#include "px/runtime/runtime.hpp"

// ---- global allocation counter for the no-allocation guard ---------------
// Every operator new in this binary (including the array form, which
// forwards here by default) bumps g_allocs. Tests read the counter around a
// hot-path region to prove counter::add never allocates.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// GCC flags free() inside a replaced operator delete as mismatched even
// though the paired operator new above uses malloc; suppress locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using px::counters::counter;
using px::counters::kind;
using px::counters::registration;
using px::counters::registry;
using px::counters::snapshot;

px::scheduler_config cfg(std::size_t workers) {
  px::scheduler_config c;
  c.num_workers = workers;
  return c;
}

TEST(Counters, RegistrationAndLookupByPath) {
  counter c;
  c.add(5);
  registration reg;
  reg.add("/px/test/alpha", kind::monotone, c);
  EXPECT_EQ(reg.size(), 1u);

  std::uint64_t v = 0;
  ASSERT_TRUE(registry::instance().value_of("/px/test/alpha", v));
  EXPECT_EQ(v, 5u);

  c.add(2);
  snapshot const snap = registry::instance().take_snapshot();
  auto const* s = snap.find("/px/test/alpha");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 7u);
  EXPECT_EQ(s->k, kind::monotone);

  reg.release();
  EXPECT_FALSE(registry::instance().value_of("/px/test/alpha", v));
}

TEST(Counters, CallbackCountersEvaluateAtSnapshotTime) {
  std::uint64_t level = 11;
  registration reg;
  reg.add("/px/test/gauge_cb", kind::gauge, [&level] { return level; });

  std::uint64_t v = 0;
  ASSERT_TRUE(registry::instance().value_of("/px/test/gauge_cb", v));
  EXPECT_EQ(v, 11u);
  level = 42;
  ASSERT_TRUE(registry::instance().value_of("/px/test/gauge_cb", v));
  EXPECT_EQ(v, 42u);
}

TEST(Counters, RegistrationUnregistersOnDestruction) {
  counter c;
  {
    registration reg;
    reg.add("/px/test/scoped", kind::monotone, c);
    EXPECT_TRUE(
        registry::instance().take_snapshot().contains("/px/test/scoped"));
  }
  EXPECT_FALSE(
      registry::instance().take_snapshot().contains("/px/test/scoped"));
}

TEST(Counters, DuplicatePathSnapshotsKeepLastRegistration) {
  counter a, b;
  a.add(1);
  b.add(2);
  registration reg;
  reg.add("/px/test/dup", kind::monotone, a);
  reg.add("/px/test/dup", kind::monotone, b);

  snapshot const snap = registry::instance().take_snapshot();
  std::size_t hits = 0;
  for (auto const& s : snap.samples)
    if (s.path == "/px/test/dup") ++hits;
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(snap.find("/px/test/dup")->value, 2u);
}

TEST(Counters, UniqueInstanceNamesNeverRepeat) {
  std::string const first = registry::instance().unique_instance("utest");
  std::string const second = registry::instance().unique_instance("utest");
  std::string const third = registry::instance().unique_instance("utest");
  EXPECT_EQ(first, "utest");
  EXPECT_NE(second, first);
  EXPECT_NE(third, second);
  EXPECT_NE(third, first);
}

TEST(Counters, BuiltinPathsExistFromFirstSnapshot) {
  snapshot const snap = registry::instance().take_snapshot();
  EXPECT_TRUE(snap.contains("/px/parcel/messages_sent"));
  EXPECT_TRUE(snap.contains("/px/parcel/bytes_sent"));
  EXPECT_TRUE(snap.contains("/px/net/messages"));
  EXPECT_TRUE(snap.contains("/px/timer/wakes_scheduled"));
  EXPECT_TRUE(snap.contains("/px/trace/events"));
}

TEST(Counters, RuntimePublishesSchedulerAndStackPaths) {
  px::runtime rt(cfg(3));
  std::string const inst = rt.counter_instance();
  std::string const sched_prefix = "/px/scheduler{" + inst + "}/";

  constexpr int n = 500;
  std::atomic<int> ran{0};
  std::vector<px::future<void>> futs;
  futs.reserve(n);
  for (int i = 0; i < n; ++i)
    futs.push_back(px::async_on(rt, [&ran] { ran.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), n);

  snapshot const snap = registry::instance().take_snapshot();
  auto const* spawned = snap.find(sched_prefix + "tasks_spawned");
  ASSERT_NE(spawned, nullptr);
  EXPECT_GE(spawned->value, static_cast<std::uint64_t>(n));
  EXPECT_TRUE(snap.contains(sched_prefix + "workers"));
  // Per-worker paths carry the worker inside the instance qualifier, HPX
  // style: /px/scheduler{inst/worker#N}/metric.
  std::string const worker_prefix = "/px/scheduler{" + inst + "/worker#";
  EXPECT_TRUE(snap.contains(worker_prefix + "0}/tasks_executed"));
  EXPECT_TRUE(snap.contains(worker_prefix + "2}/steals"));
  EXPECT_TRUE(snap.contains("/px/stacks{" + inst + "}/pool_hits"));
  EXPECT_EQ(snap.find(sched_prefix + "workers")->value, 3u);

  // Worker stats are published after task fulfilment, so the final
  // increment can trail f.get() by an instant; poll briefly.
  auto executed_total = [&] {
    std::uint64_t executed = 0;
    for (auto const& s : registry::instance().take_snapshot().samples)
      if (s.path.size() > worker_prefix.size() &&
          s.path.compare(0, worker_prefix.size(), worker_prefix) == 0 &&
          s.path.ends_with("}/tasks_executed"))
        executed += s.value;
    return executed;
  };
  rt.wait_quiescent();
  std::uint64_t executed = executed_total();
  for (int retry = 0; retry < 200 && executed < static_cast<std::uint64_t>(n);
       ++retry) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    executed = executed_total();
  }
  EXPECT_GE(executed, static_cast<std::uint64_t>(n));
}

TEST(Counters, RuntimePathsVanishWithTheRuntime) {
  std::string inst;
  {
    px::runtime rt(cfg(2));
    inst = rt.counter_instance();
    ASSERT_TRUE(registry::instance().take_snapshot().contains(
        "/px/scheduler{" + inst + "}/tasks_spawned"));
  }
  EXPECT_FALSE(registry::instance().take_snapshot().contains(
      "/px/scheduler{" + inst + "}/tasks_spawned"));
}

// Concurrent adds with concurrent snapshots: every observation of a
// monotone counter must be non-decreasing and the final value exact.
TEST(Counters, MonotoneUnderMultiWorkerStress) {
  counter c;
  registration reg;
  reg.add("/px/test/stress", kind::monotone, c);

  px::runtime rt(cfg(4));
  constexpr int tasks = 64;
  constexpr int adds_per_task = 2000;
  for (int t = 0; t < tasks; ++t)
    rt.post([&c] {
      for (int i = 0; i < adds_per_task; ++i) c.add();
    });

  std::uint64_t last = 0;
  for (int probe = 0; probe < 200; ++probe) {
    std::uint64_t v = 0;
    ASSERT_TRUE(registry::instance().value_of("/px/test/stress", v));
    EXPECT_GE(v, last);
    last = v;
  }
  rt.wait_quiescent();
  std::uint64_t v = 0;
  ASSERT_TRUE(registry::instance().value_of("/px/test/stress", v));
  EXPECT_EQ(v, static_cast<std::uint64_t>(tasks) * adds_per_task);
}

TEST(Counters, SnapshotIsSortedAndTimestamped) {
  counter c;
  registration reg;
  reg.add("/px/test/zz", kind::monotone, c);
  reg.add("/px/test/aa", kind::monotone, c);

  snapshot const a = registry::instance().take_snapshot();
  ASSERT_GE(a.samples.size(), 2u);
  for (std::size_t i = 1; i < a.samples.size(); ++i)
    EXPECT_LT(a.samples[i - 1].path, a.samples[i].path);

  snapshot const b = registry::instance().take_snapshot();
  EXPECT_GE(b.timestamp_ns, a.timestamp_ns);
}

TEST(Counters, DeltaSemantics) {
  snapshot begin, end;
  begin.timestamp_ns = 100;
  end.timestamp_ns = 250;
  begin.samples = {{"/px/a", kind::monotone, 10},
                   {"/px/b", kind::gauge, 7},
                   {"/px/reset", kind::monotone, 50}};
  end.samples = {{"/px/a", kind::monotone, 25},
                 {"/px/b", kind::gauge, 3},
                 {"/px/new", kind::monotone, 4},
                 {"/px/reset", kind::monotone, 20}};

  snapshot const d = px::counters::delta(begin, end);
  EXPECT_EQ(d.find("/px/a")->value, 15u);     // monotone: end - begin
  EXPECT_EQ(d.find("/px/b")->value, 3u);      // gauge: end value
  EXPECT_EQ(d.find("/px/new")->value, 4u);    // new path: full value
  EXPECT_EQ(d.find("/px/reset")->value, 0u);  // clamped, never wraps
}

TEST(Counters, IntervalSamplerReportsDisjointIntervals) {
  counter c;
  registration reg;
  reg.add("/px/test/interval", kind::monotone, c);

  px::counters::interval_sampler sampler;
  c.add(5);
  snapshot d1 = sampler.next();
  EXPECT_EQ(d1.find("/px/test/interval")->value, 5u);
  c.add(3);
  snapshot d2 = sampler.next();
  EXPECT_EQ(d2.find("/px/test/interval")->value, 3u);
}

TEST(Counters, JsonRoundTrip) {
  counter c;
  c.add(123456789);
  registration reg;
  reg.add("/px/test/json_m", kind::monotone, c);
  reg.add("/px/test/json_g", kind::gauge, [] { return std::uint64_t{7}; });

  snapshot const snap = registry::instance().take_snapshot();
  snapshot const parsed = px::counters::parse_json(snap.to_json());
  EXPECT_EQ(parsed.timestamp_ns, snap.timestamp_ns);
  ASSERT_EQ(parsed.samples.size(), snap.samples.size());
  for (std::size_t i = 0; i < snap.samples.size(); ++i)
    EXPECT_EQ(parsed.samples[i], snap.samples[i]);
}

TEST(Counters, CsvRoundTrip) {
  counter c;
  c.add(42);
  registration reg;
  reg.add("/px/test/csv_m", kind::monotone, c);

  snapshot const snap = registry::instance().take_snapshot();
  snapshot const parsed = px::counters::parse_csv(snap.to_csv());
  // CSV intentionally drops the timestamp; samples must survive exactly.
  ASSERT_EQ(parsed.samples.size(), snap.samples.size());
  for (std::size_t i = 0; i < snap.samples.size(); ++i)
    EXPECT_EQ(parsed.samples[i], snap.samples[i]);
}

TEST(Counters, MalformedDocumentsThrow) {
  EXPECT_THROW((void)px::counters::parse_json("not json"),
               std::runtime_error);
  EXPECT_THROW((void)px::counters::parse_json("{\"counters\":"),
               std::runtime_error);
  EXPECT_THROW((void)px::counters::parse_csv("wrong,header,row\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)px::counters::parse_csv("path,kind,value\n/px/x,monotone,abc\n"),
      std::runtime_error);
}

// The increment path must stay allocation-free: one relaxed atomic op, no
// locks, no heap traffic. This is the cost contract the header documents.
TEST(Counters, IncrementPathDoesNotAllocate) {
  counter c;
  registration reg;
  reg.add("/px/test/noalloc", kind::monotone, c);
  auto& builtin = px::counters::builtin();

  std::uint64_t const before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    c.add();
    builtin.parcel_messages_sent.add(2);
    builtin.net_bytes.add(64);
  }
  std::uint64_t const after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(c.load(), 100000u);
}

}  // namespace
