// px::serve tests: tenant registration + lane wiring, the admission-control
// state machine (shed at the in-flight cap, resume below the hysteresis
// watermark), per-tenant /px/tenant/... counters, mixed solver job kinds,
// weighted isolation under load, and the resilience composition — a tenant
// running a checkpointed distributed heat solve survives a locality
// fail-stop while its co-tenant's tail latency stays bounded, under a
// torture seed sweep (16 seeds in the check.sh --serve/--resilience lanes).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "px/counters/counters.hpp"
#include "px/px.hpp"
#include "px/serve/serve.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/torture/forall.hpp"

namespace {

namespace serve = px::serve;
using namespace std::chrono_literals;

px::scheduler_config serve_pool(char const* policy, std::size_t workers = 4) {
  px::scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.policy_name = policy;
  return cfg;
}

serve::tenant_config tenant(std::string name, double weight,
                            std::size_t max_in_flight) {
  serve::tenant_config tc;
  tc.name = std::move(name);
  tc.weight = weight;
  tc.max_in_flight = max_in_flight;
  return tc;
}

// ---- basics ---------------------------------------------------------------

TEST(Serve, SubmitDrainStats) {
  px::runtime rt(serve_pool("wfq"));
  serve::server sv(rt);
  auto const id = sv.add_tenant(tenant("basic", 1.0, 64));
  EXPECT_EQ(sv.tenant_count(), 1u);

  serve::job_request req;
  req.kind = serve::job_kind::spin;
  req.size = 10'000;
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(sv.submit(id, req), serve::admit_result::accepted);
  sv.drain();

  auto const s = sv.stats(id);
  EXPECT_EQ(s.submitted, 32u);
  EXPECT_EQ(s.accepted, 32u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.completed, 32u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_FALSE(s.shedding);
  EXPECT_GT(s.p50_ns, 0u);
  EXPECT_GE(s.p99_ns, s.p50_ns);
}

TEST(Serve, TenantCountersPublished) {
  px::runtime rt(serve_pool("wfq"));
  serve::server sv(rt);
  auto const id = sv.add_tenant(tenant("metrics", 1.0, 64));
  serve::job_request req;
  req.size = 1'000;
  for (int i = 0; i < 8; ++i) sv.submit(id, req);
  sv.drain();

  auto const& reg = px::counters::registry::instance();
  std::string const prefix = "/px/tenant/" + sv.tenant_instance(id) + "/";
  std::uint64_t v = 0;
  ASSERT_TRUE(reg.value_of(prefix + "throughput", v));
  EXPECT_EQ(v, 8u);
  ASSERT_TRUE(reg.value_of(prefix + "queued", v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(reg.value_of(prefix + "rejected", v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(reg.value_of(prefix + "p50_ns", v));
  EXPECT_GT(v, 0u);
  ASSERT_TRUE(reg.value_of(prefix + "p99_ns", v));
  EXPECT_GT(v, 0u);
}

TEST(Serve, MixedJobKindsAllComplete) {
  px::runtime rt(serve_pool("wfq"));
  serve::server sv(rt);
  struct {
    serve::job_kind kind;
    std::size_t size;
  } const kinds[] = {
      {serve::job_kind::spin, 50'000},
      {serve::job_kind::heat1d, 512},
      {serve::job_kind::jacobi2d, 24},
      {serve::job_kind::dataflow, 128},
  };
  serve::tenant_id ids[4];
  for (int k = 0; k < 4; ++k)
    ids[k] = sv.add_tenant(tenant("kind" + std::to_string(k), 1.0, 32));
  for (int k = 0; k < 4; ++k) {
    serve::job_request req;
    req.kind = kinds[k].kind;
    req.size = kinds[k].size;
    req.steps = 5;
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(sv.submit(ids[k], req), serve::admit_result::accepted);
  }
  sv.drain();
  for (int k = 0; k < 4; ++k) {
    auto const s = sv.stats(ids[k]);
    EXPECT_EQ(s.completed, 4u) << "kind " << k;
    EXPECT_GT(s.p50_ns, 0u) << "kind " << k;
  }
}

// ---- admission control ----------------------------------------------------

TEST(Serve, AdmissionShedsAtCapAndResumesBelowWatermark) {
  px::runtime rt(serve_pool("wfq", 2));
  serve::server sv(rt);
  auto tc = tenant("capped", 1.0, 4);
  tc.resume_fraction = 0.5;  // resume at in_flight <= 2
  auto const id = sv.add_tenant(tc);

  // Jobs park on a gate (cooperatively — yield loops, not blocked workers),
  // pinning in_flight at whatever admission allowed through.
  std::atomic<bool> gate{false};
  serve::job_request req;
  req.work = [&gate] {
    while (!gate.load(std::memory_order_acquire)) px::this_task::yield();
  };

  int accepted = 0, rejected = 0;
  for (int i = 0; i < 20; ++i) {
    if (sv.submit(id, req) == serve::admit_result::accepted)
      ++accepted;
    else
      ++rejected;
  }
  // Sequential submissions against a gate: exactly the cap is admitted
  // (the 5th submission observes in_flight == 4 and flips to shedding).
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 16);
  EXPECT_TRUE(sv.stats(id).shedding);

  gate.store(true, std::memory_order_release);
  sv.drain();

  // Hysteresis: fully drained (0 <= resume watermark), so the tenant
  // accepts again; the shedding flag clears on the next admission check.
  EXPECT_EQ(sv.submit(id, serve::job_request{}), serve::admit_result::accepted);
  sv.drain();
  auto const s = sv.stats(id);
  EXPECT_FALSE(s.shedding);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.rejected, 16u);
}

TEST(Serve, OpenLoopOverloadIsShedNotQueued) {
  px::runtime rt(serve_pool("wfq", 2));
  serve::server sv(rt);
  auto const id = sv.add_tenant(tenant("overload", 1.0, 8));

  serve::open_loop_config ol;
  ol.rate_hz = 50'000.0;  // far past what 2 workers can serve
  ol.jobs = 400;
  ol.request.kind = serve::job_kind::spin;
  ol.request.size = 200'000;
  ol.request.steps = 2;
  auto const r = run_open_loop(sv, id, ol);
  sv.drain();

  EXPECT_EQ(r.accepted + r.rejected, 400u);
  EXPECT_GT(r.rejected, 0u) << "open-loop overload must shed";
  auto const s = sv.stats(id);
  EXPECT_EQ(s.completed, r.accepted);
  EXPECT_EQ(s.in_flight, 0u);
}

// ---- weighted isolation ---------------------------------------------------

TEST(Serve, HeavierTenantGetsNoLessThroughputUnderSaturation) {
  // Deterministic fairness is pinned in test_policy.cpp (single-worker
  // stride order); here only the coarse serving-level property: with both
  // tenants saturating a wfq pool, the 4x-weight tenant completes at least
  // as many jobs as the 1x tenant.
  px::runtime rt(serve_pool("wfq", 2));
  serve::server sv(rt);
  auto const heavy = sv.add_tenant(tenant("heavy", 4.0, 256));
  auto const light = sv.add_tenant(tenant("light", 1.0, 256));

  serve::job_request req;
  req.kind = serve::job_kind::spin;
  req.size = 60'000;
  req.steps = 1;
  for (int i = 0; i < 120; ++i) {
    sv.submit(heavy, req);
    sv.submit(light, req);
  }
  sv.drain();
  auto const hs = sv.stats(heavy);
  auto const ls = sv.stats(light);
  EXPECT_EQ(hs.completed + ls.completed, 240u);
  EXPECT_GE(hs.completed, ls.completed);
  EXPECT_GT(ls.completed, 0u);
}

// ---- resilience composition ----------------------------------------------

px::dist::domain_config serve_kill_cfg() {
  px::dist::domain_config cfg;
  cfg.num_localities = 8;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.resilience.enabled = true;
  cfg.resilience.heartbeat_interval_us = 2'000.0;
  cfg.resilience.suspect_after_us = 100'000.0;
  cfg.resilience.confirm_after_us = 500'000.0;
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  return cfg;
}

struct phase_result {
  std::uint64_t p99_ns = 0;
  std::uint64_t completed = 0;
  std::uint64_t accepted = 0;
  std::size_t recoveries = 0;
};

// One serving phase: tenant "batch" runs a checkpointed distributed heat
// solve (optionally with locality 3 fail-stopped mid-run); tenant "lat"
// offers an open loop of small spin jobs across the same wall-clock window.
// Returns the latency tenant's percentile picture.
phase_result run_phase(bool inject_fault) {
  px::scheduler_config sc = serve_pool("wfq");
  sc.stack_size = 256 * 1024;  // the distributed driver runs on a fiber
  px::runtime rt(sc);
  serve::server sv(rt);
  auto const batch = sv.add_tenant(tenant("batch", 1.0, 4));
  auto const lat = sv.add_tenant(tenant("lat", 4.0, 1024));

  px::stencil::dist_heat_config hc;
  hc.nx_total = 97;
  hc.steps = 60;
  hc.checkpoint_interval = 10;
  hc.max_recoveries = 8;
  auto const initial = px::stencil::heat1d_sine_initial(97);

  auto dom =
      std::make_unique<px::dist::distributed_domain>(serve_kill_cfg());
  if (inject_fault) dom->fabric().faults().fail_stop_at_step(3, 47);

  phase_result out;
  std::atomic<std::size_t> recoveries{0};
  serve::job_request batch_req;
  batch_req.work = [&] {
    auto const r = px::stencil::run_distributed_heat1d(*dom, initial, hc);
    recoveries.store(r.recoveries, std::memory_order_relaxed);
  };
  EXPECT_EQ(sv.submit(batch, batch_req), serve::admit_result::accepted);

  serve::open_loop_config ol;
  ol.rate_hz = 1'000.0;
  ol.jobs = 800;  // ~0.8 s of offered load, spanning the kill + recovery
  ol.request.kind = serve::job_kind::spin;
  ol.request.size = 20'000;
  ol.request.steps = 1;
  auto const gen = run_open_loop(sv, lat, ol);
  sv.drain();
  dom->wait_all_quiescent();
  if (inject_fault) EXPECT_TRUE(dom->is_confirmed_dead(3));

  auto const s = sv.stats(lat);
  out.p99_ns = s.p99_ns;
  out.completed = s.completed;
  out.accepted = gen.accepted;
  out.recoveries = recoveries.load(std::memory_order_relaxed);
  return out;
}

TEST(ServeResilience, TenantSurvivesCoTenantFailStop) {
  auto const clean = run_phase(false);
  auto const faulted = run_phase(true);

  // The batch tenant survived: the fail-stop was recovered, not fatal.
  EXPECT_EQ(clean.recoveries, 0u);
  EXPECT_GE(faulted.recoveries, 1u);

  // The latency tenant is undisturbed: every accepted job completed, and
  // its p99 stayed in the same regime as the fault-free phase (bounded
  // multiplicative band + floor to absorb scheduler noise — a broken
  // isolation story shows up as ~confirm-latency (0.5 s+) stalls, an order
  // of magnitude past this bound).
  EXPECT_EQ(clean.completed, clean.accepted);
  EXPECT_EQ(faulted.completed, faulted.accepted);
  ASSERT_GT(clean.p99_ns, 0u);
  std::uint64_t const bound =
      std::max<std::uint64_t>(5 * clean.p99_ns, 50'000'000);  // >= 50 ms
  EXPECT_LE(faulted.p99_ns, bound)
      << "co-tenant fail-stop moved p99 from " << clean.p99_ns << " ns to "
      << faulted.p99_ns << " ns";
}

TEST(ServeResilience, FailStopIsolationSeedSweep) {
  namespace torture = px::torture;
  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.3;
  opts.perturb.max_sleep_us = 40;
  // Deadline jitter stalls heartbeat ticks wholesale; see the resilience
  // sweep for the rationale.
  opts.perturb.timer_jitter_ns = 0;
  opts.dump_stem = "torture-serve";

  auto const r = torture::forall_seeds(
      torture::seed_count(4),  // --serve lane raises via PX_TORTURE_SEEDS
      [](std::uint64_t) {
        auto const clean = run_phase(false);
        auto const faulted = run_phase(true);
        if (faulted.recoveries < 1)
          throw std::runtime_error("fail-stop at step 47 never recovered");
        if (faulted.completed != faulted.accepted)
          throw std::runtime_error("latency tenant lost jobs under fault");
        std::uint64_t const bound = std::max<std::uint64_t>(
            5 * std::max<std::uint64_t>(clean.p99_ns, 1), 100'000'000);
        if (faulted.p99_ns > bound)
          throw std::runtime_error(
              "co-tenant fail-stop disturbed neighbour p99: " +
              std::to_string(clean.p99_ns) + " ns clean vs " +
              std::to_string(faulted.p99_ns) + " ns faulted");
      },
      opts);
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
