// Torture tests for the timer service's cancellation edge: a timer token
// shared between the firing callback and a concurrent canceller must be
// claimed exactly once, the callbacks_cancelled counter must account every
// suppressed callback exactly, and torture deadline jitter may only ever
// delay a deadline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/runtime/timer_service.hpp"
#include "px/torture/forall.hpp"

namespace {

namespace torture = px::torture;
using px::counters::builtin;
using px::rt::timer_service;
using px::rt::timer_token;

// Spin until the shared timer heap has drained every entry this test put in
// (entries fire as claimed callbacks or counted cancels; both are totals we
// can observe).
void drain_heap() {
  while (timer_service::instance().pending() != 0)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
}

TEST(TortureTimer, TokenClaimedExactlyOnceUnderCancelFireHammer) {
  auto r = torture::forall_seeds(
      torture::seed_count(6),
      [](std::uint64_t seed) {
        // n callbacks with deadlines spraying across a few hundred
        // microseconds; a canceller thread walks the tokens concurrently,
        // cancelling every other one right around its deadline.
        constexpr int n = 200;
        auto const cancelled_before = builtin().timer_cancelled.load();
        std::vector<std::shared_ptr<timer_token>> tokens;
        std::vector<std::atomic<int>> fired(n);
        for (auto& f : fired) f.store(0, std::memory_order_relaxed);
        std::atomic<int> fired_count{0};
        tokens.reserve(n);
        auto const base = timer_service::clock::now();
        for (int i = 0; i < n; ++i) {
          tokens.push_back(std::make_shared<timer_token>());
          timer_service::instance().call_at(
              base + std::chrono::microseconds(50 + (i * 7 + (seed & 31))),
              [&fired, &fired_count, i] {
                fired[i].fetch_add(1);
                fired_count.fetch_add(1);
              },
              tokens[i]);
        }
        int cancel_wins = 0;
        for (int i = 0; i < n; i += 2)
          if (tokens[static_cast<std::size_t>(i)]->cancel()) ++cancel_wins;
        drain_heap();
        // pending()==0 can be observed while the last popped callback is
        // still executing; wait until every entry is accounted as either a
        // claimed fire or a counted cancel.
        while (fired_count.load() +
                   static_cast<int>(builtin().timer_cancelled.load() -
                                    cancelled_before) <
               n)
          std::this_thread::sleep_for(std::chrono::microseconds(200));

        int fired_total = 0;
        for (int i = 0; i < n; ++i) {
          int const f = fired[i].load();
          int const c = (i % 2 == 0 &&
                         !tokens[static_cast<std::size_t>(i)]->is_armed() &&
                         f == 0)
                            ? 1
                            : 0;
          if (f + c != 1)
            throw std::runtime_error(
                "token " + std::to_string(i) + " settled " +
                std::to_string(f + c) + " times (fired " + std::to_string(f) +
                ")");
          fired_total += f;
        }
        // Every suppressed callback is counted exactly once when its heap
        // entry fires as a no-op.
        auto const cancelled_delta =
            builtin().timer_cancelled.load() - cancelled_before;
        if (cancelled_delta != static_cast<std::uint64_t>(cancel_wins))
          throw std::runtime_error(
              "callbacks_cancelled counted " +
              std::to_string(cancelled_delta) + ", cancel() won " +
              std::to_string(cancel_wins) + " times");
        if (fired_total + cancel_wins != n)
          throw std::runtime_error("fired + cancelled != scheduled");
      },
      [] {
        torture::forall_options opts;
        opts.perturb.perturb_probability = 0.4;
        opts.perturb.max_sleep_us = 30;
        opts.perturb.timer_jitter_ns = 100'000;
        opts.dump_stem = "torture-timer";
        return opts;
      }());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureTimer, JitterOnlyEverDelaysDeadlines) {
  // The perturber adds jitter to deadlines but must never fire a callback
  // before the deadline the caller asked for.
  auto failure = torture::run_one(
      0xbadcafe,
      [](std::uint64_t) {
        constexpr int n = 32;
        std::atomic<int> early{0};
        std::atomic<int> done{0};
        auto const base = timer_service::clock::now();
        for (int i = 0; i < n; ++i) {
          auto const deadline = base + std::chrono::milliseconds(1 + i % 3);
          timer_service::instance().call_at(deadline, [&, deadline] {
            if (timer_service::clock::now() < deadline) early.fetch_add(1);
            done.fetch_add(1);
          });
        }
        while (done.load() != n)
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        if (early.load() != 0)
          throw std::runtime_error(std::to_string(early.load()) +
                                   " callback(s) fired before deadline");
      },
      [] {
        torture::config cfg;
        cfg.perturb_probability = 1.0;
        cfg.timer_jitter_ns = 2'000'000;  // jitter >> the deadlines' spread
        cfg.max_sleep_us = 0;
        return cfg;
      }());
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(TortureTimer, SameEpochReorderPreservesEveryCallback) {
  // The torture reorder swaps same-epoch due entries but must never lose or
  // double-fire one.
  auto r = torture::forall_seeds(
      torture::seed_count(4),
      [](std::uint64_t) {
        constexpr int n = 128;
        std::vector<std::atomic<int>> fired(n);
        for (auto& f : fired) f.store(0, std::memory_order_relaxed);
        std::atomic<int> done{0};
        // One shared past-due deadline: all entries land in the same epoch,
        // maximizing reorder opportunities.
        auto const deadline = timer_service::clock::now();
        for (int i = 0; i < n; ++i)
          timer_service::instance().call_at(deadline, [&fired, &done, i] {
            fired[i].fetch_add(1);
            done.fetch_add(1);
          });
        while (done.load() != n)
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        for (int i = 0; i < n; ++i)
          if (fired[i].load() != 1)
            throw std::runtime_error("callback " + std::to_string(i) +
                                     " fired " +
                                     std::to_string(fired[i].load()) +
                                     " times");
      },
      [] {
        torture::forall_options opts;
        opts.perturb.perturb_probability = 0.6;
        opts.perturb.max_sleep_us = 10;
        opts.perturb.timer_jitter_ns = 0;  // pure reorder, no jitter
        opts.dump_stem = "torture-timer";
        return opts;
      }());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
