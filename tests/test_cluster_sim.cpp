// Tests for the discrete-event engine and the cluster simulation of the
// distributed 1D solver, including agreement with the closed-form scaling
// model and with the paper's headline numbers.
#include <gtest/gtest.h>

#include <vector>

#include "px/arch/cluster_sim.hpp"
#include "px/arch/des.hpp"
#include "px/arch/scaling_model.hpp"

namespace {

using namespace px::arch;
namespace net = px::net;

// ---- DES engine ------------------------------------------------------------

TEST(DesEngine, RunsEventsInTimeOrder) {
  des_engine des;
  std::vector<int> order;
  des.schedule_at(3.0, [&] { order.push_back(3); });
  des.schedule_at(1.0, [&] { order.push_back(1); });
  des.schedule_at(2.0, [&] { order.push_back(2); });
  des.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(des.now(), 3.0);
  EXPECT_EQ(des.events_processed(), 3u);
}

TEST(DesEngine, SimultaneousEventsAreFifo) {
  des_engine des;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    des.schedule_at(1.0, [&order, i] { order.push_back(i); });
  des.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(DesEngine, CallbacksCanScheduleMore) {
  des_engine des;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) des.schedule_after(1.0, chain);
  };
  des.schedule_at(0.0, chain);
  des.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(des.now(), 4.0);
}

TEST(DesEngine, ScheduleAfterIsRelative) {
  des_engine des;
  double seen = -1.0;
  des.schedule_at(2.0, [&] {
    des.schedule_after(0.5, [&] { seen = des.now(); });
  });
  des.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

// ---- cluster simulation ------------------------------------------------------

TEST(ClusterSim, SingleNodeMatchesComputeOnly) {
  machine m = xeon_e5_2660v3();
  cluster_sim_config cfg;
  cfg.nodes = 1;
  auto res = simulate_heat1d_cluster(m, net::infiniband_edr(), cfg);
  EXPECT_NEAR(res.makespan_s, 28.0, 0.1);  // 1.2e9 x 100 / rate
  EXPECT_EQ(res.messages, 0u);
  EXPECT_NEAR(res.exposed_wait_s, 0.0, 1e-9);
}

TEST(ClusterSim, MessageCountMatchesTopology) {
  machine m = a64fx();
  cluster_sim_config cfg;
  cfg.nodes = 4;
  cfg.steps = 10;
  auto res = simulate_heat1d_cluster(m, net::tofu_d(), cfg);
  // 2 * (nodes - 1) halos per step.
  EXPECT_EQ(res.messages, 2u * 3u * 10u);
  EXPECT_GT(res.des_events, res.messages);
}

TEST(ClusterSim, LatencyHidesUnderComputeOnCapableFabric) {
  machine m = xeon_e5_2660v3();
  cluster_sim_config cfg;
  cfg.nodes = 8;
  auto res = simulate_heat1d_cluster(m, net::infiniband_edr(), cfg);
  // Interior compute per step (~35 ms) dwarfs the ~2 us transfer: no
  // exposed waiting anywhere in the run.
  EXPECT_LT(res.exposed_wait_s, 1e-3);
}

TEST(ClusterSim, SlowFabricExposesWaits) {
  machine m = xeon_e5_2660v3();
  cluster_sim_config cfg;
  cfg.nodes = 8;
  cfg.steps = 50;
  cfg.total_points = 8.0 * 1e4;  // tiny compute: 1e4 pts/node/step
  cfg.per_step_overhead_s = 0.0;  // isolate the communication effect
  net::fabric_model molasses{"molasses", 5000.0, 0.001, 0.0};  // 5 ms halos
  auto res = simulate_heat1d_cluster(m, molasses, cfg);
  EXPECT_GT(res.exposed_wait_s, 0.1);  // waits dominate
}

TEST(ClusterSim, AgreesWithClosedFormOnCapableMachines) {
  for (auto const& m : {xeon_e5_2660v3(), a64fx(), thunderx2()}) {
    for (std::size_t nodes : {1u, 2u, 4u, 8u}) {
      double const des = simulated_strong_time_s(m, nodes);
      double const closed = heat1d_strong_time_s(m, nodes);
      EXPECT_NEAR(des / closed, 1.0, 0.03)
          << m.short_name << " strong " << nodes;
      double const desw = simulated_weak_time_s(m, nodes);
      double const closedw = heat1d_weak_time_s(m, nodes);
      // Weak closed form carries a flat empirical offset the DES does not
      // model below 2 nodes; stay within 10%.
      EXPECT_NEAR(desw / closedw, 1.0, 0.10)
          << m.short_name << " weak " << nodes;
    }
  }
}

TEST(ClusterSim, ReproducesPaperHeadlines) {
  EXPECT_NEAR(simulated_strong_time_s(xeon_e5_2660v3(), 1), 28.0, 0.5);
  EXPECT_NEAR(simulated_strong_time_s(xeon_e5_2660v3(), 8), 3.8, 0.25);
  EXPECT_NEAR(simulated_strong_time_s(a64fx(), 1), 18.0, 0.3);
  EXPECT_NEAR(simulated_strong_time_s(a64fx(), 8), 2.5, 0.2);
}

TEST(ClusterSim, KunpengDegradesWithNodeCount) {
  machine m = kunpeng916();
  // Weak scaling must rise markedly (the paper's NIC-starvation story).
  double const w1 = simulated_weak_time_s(m, 1);
  double const w8 = simulated_weak_time_s(m, 8);
  EXPECT_GT(w8 / w1, 1.5);
  // Strong scaling well below linear.
  double const factor = simulated_strong_time_s(m, 1) /
                        simulated_strong_time_s(m, 8);
  EXPECT_LT(factor, 6.0);
  EXPECT_GT(factor, 2.0);
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  machine m = thunderx2();
  double const a = simulated_strong_time_s(m, 8);
  double const b = simulated_strong_time_s(m, 8);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ClusterSim, MakespanDecreasesWithNodesOnCapableMachines) {
  machine m = a64fx();
  double prev = simulated_strong_time_s(m, 1);
  for (std::size_t n = 2; n <= 8; n *= 2) {
    double const t = simulated_strong_time_s(m, n);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
