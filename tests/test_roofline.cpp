// Tests for the roofline model (Eq. 1) and the paper's arithmetic
// intensities of §V-B.
#include <gtest/gtest.h>

#include "px/arch/roofline.hpp"

namespace {

using namespace px::arch;

TEST(Roofline, Eq1MemoryBound) {
  // AI * BW below CP: memory bound.
  EXPECT_DOUBLE_EQ(attainable(1000.0, 1.0 / 24.0, 120.0), 5.0);
}

TEST(Roofline, Eq1ComputeBound) {
  EXPECT_DOUBLE_EQ(attainable(10.0, 1.0, 120.0), 10.0);
}

TEST(Roofline, Eq1Crossover) {
  // At AI = CP/BW the two limits meet.
  double const cp = 832.0, bw = 118.0;
  double const ai = cp / bw;
  EXPECT_NEAR(attainable(cp, ai, bw), cp, 1e-9);
  EXPECT_LT(attainable(cp, ai * 0.5, bw), cp);
}

TEST(Roofline, PaperArithmeticIntensities) {
  // §V-B: "the AI for floats and doubles are 1/12 LUP/Byte and 1/24
  // LUP/Byte" assuming three transfers per LUP.
  EXPECT_DOUBLE_EQ(stencil_ai(4, 3), 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(stencil_ai(8, 3), 1.0 / 24.0);
  // Cache-blocking behaviour (two transfers): 1/8 and 1/16 (§VII-B).
  EXPECT_DOUBLE_EQ(stencil_ai(4, 2), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(stencil_ai(8, 2), 1.0 / 16.0);
}

TEST(Roofline, ExpectedPeaks) {
  double const bw = 240.0;
  EXPECT_DOUBLE_EQ(expected_peak_min(4, bw), bw / 12.0);
  EXPECT_DOUBLE_EQ(expected_peak_max(4, bw), bw / 8.0);
  EXPECT_DOUBLE_EQ(expected_peak_min(8, bw), bw / 24.0);
  EXPECT_DOUBLE_EQ(expected_peak_max(8, bw), bw / 16.0);
  // The 49% boost the paper reports is exactly max/min = 3/2.
  EXPECT_NEAR(expected_peak_max(4, bw) / expected_peak_min(4, bw), 1.5,
              1e-12);
}

TEST(Roofline, ComputePeakGlups) {
  // 5-point Jacobi: 4 FLOPs per LUP; floats run at twice the DP rate.
  EXPECT_DOUBLE_EQ(compute_peak_glups(832.0, 8), 208.0);
  EXPECT_DOUBLE_EQ(compute_peak_glups(832.0, 4), 416.0);
}

TEST(Roofline, MonotoneInBandwidth) {
  double prev = 0.0;
  for (double bw = 10.0; bw <= 1000.0; bw += 10.0) {
    double const p = attainable(50.0, 1.0 / 12.0, bw);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(prev, 50.0);  // saturates at CP (needs bw >= 600)
}

}  // namespace
