// Tests for the lossy-fabric fault plane and the parcel reliability layer:
// dedup-window semantics, backoff schedule, deterministic fault sampling,
// exactly-once delivery of the distributed heat solver over a lossy fabric,
// retry-budget exhaustion surfacing px::net::delivery_error, loss-tolerant
// collectives, and the remote-channel dead-letter path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/dist/collectives.hpp"
#include "px/dist/dist_barrier.hpp"
#include "px/dist/remote_channel.hpp"
#include "px/net/fault_plane.hpp"
#include "px/net/reliability.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/stencil/reference.hpp"

namespace {

int echo_scaled(px::dist::locality& here, int x) {
  return static_cast<int>(here.id()) * 100 + x;
}

int lossy_barrier_participant(px::dist::locality& here,
                              std::uint64_t rounds) {
  for (std::uint64_t g = 0; g < rounds; ++g)
    px::dist::barrier_arrive_and_wait(here, g);
  return static_cast<int>(here.id());
}

}  // namespace

PX_REGISTER_ACTION(echo_scaled)
PX_REGISTER_ACTION(lossy_barrier_participant)
PX_REGISTER_REMOTE_CHANNEL(double)

namespace {

using px::counters::builtin;

// ---- dedup window --------------------------------------------------------

TEST(DedupWindow, AcceptsEachSeqExactlyOnce) {
  px::net::dedup_window w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_FALSE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  EXPECT_FALSE(w.accept(2));
  EXPECT_FALSE(w.accept(1));
  EXPECT_EQ(w.floor(), 2u);
}

TEST(DedupWindow, OutOfOrderArrivalsAdvanceFloorWhenGapCloses) {
  px::net::dedup_window w;
  EXPECT_TRUE(w.accept(3));
  EXPECT_TRUE(w.accept(2));
  EXPECT_EQ(w.floor(), 0u);  // 1 still missing
  EXPECT_EQ(w.pending_gaps(), 2u);
  EXPECT_TRUE(w.accept(1));
  EXPECT_EQ(w.floor(), 3u);  // contiguous run collapsed
  EXPECT_EQ(w.pending_gaps(), 0u);
  EXPECT_FALSE(w.accept(2));  // below the floor now
}

TEST(DedupWindow, CapacityClampBoundsMemory) {
  px::net::dedup_window w(4);
  // Leave seq 1 missing so nothing collapses into the floor.
  for (std::uint64_t s = 2; s <= 7; ++s) EXPECT_TRUE(w.accept(s));
  EXPECT_LE(w.pending_gaps(), 4u);
  EXPECT_GT(w.floor(), 0u);  // the clamp advanced the floor
  // The clamp trades exactness for memory: a fresh accept still works.
  EXPECT_TRUE(w.accept(100));
}

// ---- backoff schedule ----------------------------------------------------

TEST(Backoff, GrowsExponentiallyAndCaps) {
  px::net::reliability_config cfg;
  cfg.initial_backoff_us = 100.0;
  cfg.backoff_multiplier = 2.0;
  cfg.max_backoff_us = 450.0;
  EXPECT_DOUBLE_EQ(px::net::backoff_us(cfg, 0), 100.0);
  EXPECT_DOUBLE_EQ(px::net::backoff_us(cfg, 1), 200.0);
  EXPECT_DOUBLE_EQ(px::net::backoff_us(cfg, 2), 400.0);
  EXPECT_DOUBLE_EQ(px::net::backoff_us(cfg, 3), 450.0);  // capped
  EXPECT_DOUBLE_EQ(px::net::backoff_us(cfg, 10), 450.0);
}

TEST(Backoff, RtoIncludesRoundTripEstimate) {
  px::net::reliability_config cfg;
  cfg.initial_backoff_us = 100.0;
  // attempt 1 -> backoff retry 0 = 100us; RTT = 2 * 5000ns.
  EXPECT_EQ(px::net::rto_ns(cfg, 1, 5000), 2u * 5000u + 100'000u);
  // attempt 2 -> backoff retry 1 = 200us.
  EXPECT_EQ(px::net::rto_ns(cfg, 2, 5000), 2u * 5000u + 200'000u);
}

// ---- fault plane ---------------------------------------------------------

TEST(FaultPlane, DisabledPlaneNeverFaults) {
  px::net::fault_plane plane;
  for (int i = 0; i < 100; ++i) {
    auto const d = plane.sample(0, 1);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.hold_ns, 0u);
  }
  EXPECT_EQ(plane.stats().sampled, 0u);
}

TEST(FaultPlane, SameSeedSameDecisionSequence) {
  px::net::fault_config cfg;
  cfg.drop = 0.2;
  cfg.duplicate = 0.2;
  cfg.reorder = 0.2;
  cfg.seed = 1234;
  px::net::fault_plane a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    auto const da = a.sample(0, 1);
    auto const db = b.sample(0, 1);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.hold_ns, db.hold_ns);
  }
  // Distinct links draw from distinct streams but stay deterministic too.
  auto const x = a.sample(1, 0);
  auto const y = b.sample(1, 0);
  EXPECT_EQ(x.drop, y.drop);
  EXPECT_EQ(x.duplicate, y.duplicate);
}

TEST(FaultPlane, StatsAccountForEveryDecision) {
  px::net::fault_config cfg;
  cfg.drop = 0.3;
  cfg.duplicate = 0.3;
  px::net::fault_plane plane(cfg);
  for (int i = 0; i < 1000; ++i) (void)plane.sample(0, 1);
  auto const s = plane.stats();
  EXPECT_EQ(s.sampled, 1000u);
  EXPECT_GT(s.drops, 0u);
  EXPECT_GT(s.duplicates, 0u);
  EXPECT_LE(s.drops + s.duplicates + s.reorders + s.extra_delays, s.sampled);
}

// ---- lossy-fabric end-to-end --------------------------------------------

px::dist::domain_config lossy_cfg(std::size_t n) {
  px::dist::domain_config cfg;
  cfg.num_localities = n;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.05;
  cfg.faults.duplicate = 0.02;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = 42;
  return cfg;
}

TEST(LossyFabric, HeatSolverBitwiseIdenticalToLoopback) {
  auto initial = px::stencil::heat1d_sine_initial(601);
  px::stencil::dist_heat_config hc;
  hc.steps = 20;

  // Clean run: same topology, no faults (reliability stays off under
  // `automatic`, preserving the historical wire accounting).
  px::dist::domain_config clean = lossy_cfg(3);
  clean.faults = {};
  px::dist::distributed_domain clean_dom(clean);
  ASSERT_FALSE(clean_dom.reliable());
  auto const r_clean = run_distributed_heat1d(clean_dom, initial, hc);

  auto const before_retx = builtin().net_retransmits.load();
  auto const before_drops = builtin().net_drops.load();
  auto const before_acks = builtin().net_acks.load();

  px::dist::distributed_domain lossy_dom(lossy_cfg(3));
  ASSERT_TRUE(lossy_dom.reliable());
  auto const r_lossy = run_distributed_heat1d(lossy_dom, initial, hc);
  lossy_dom.wait_all_quiescent();

  // Exactly-once delivery means the numerics cannot tell the fabrics
  // apart: bitwise-identical fields, not merely close ones.
  ASSERT_EQ(r_lossy.values.size(), r_clean.values.size());
  EXPECT_TRUE(r_lossy.values == r_clean.values);

  // The protocol visibly worked: frames were dropped, retransmitted and
  // acked (fault stats are per-domain, counter deltas process-wide).
  auto const s = lossy_dom.fabric().faults().stats();
  EXPECT_GT(s.sampled, 0u);
  EXPECT_GT(s.drops, 0u);
  EXPECT_GE(builtin().net_drops.load() - before_drops, s.drops);
  EXPECT_GT(builtin().net_retransmits.load() - before_retx, 0u);
  EXPECT_GT(builtin().net_acks.load() - before_acks, 0u);
}

TEST(LossyFabric, DuplicatesSuppressedExactly) {
  // Duplicate-only faults with zero injected delay: frames deliver inline,
  // acks beat every RTO, so nothing retransmits and the suppression count
  // equals the fault plane's duplicate count exactly.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.faults.duplicate = 0.3;
  cfg.faults.seed = 7;
  // Inline acks cancel each RTO within microseconds; a huge backoff keeps
  // a mid-chain OS preemption from letting a retransmission slip through
  // and breaking the exact-count arithmetic below.
  cfg.reliability.initial_backoff_us = 5e5;
  cfg.reliability.max_backoff_us = 5e5;

  auto const before_dup = builtin().net_dup_suppressed.load();
  auto const before_acks = builtin().net_acks.load();
  auto const before_retx = builtin().net_retransmits.load();
  {
    px::dist::distributed_domain dom(cfg);
    dom.run([](px::dist::locality& loc0) {
      for (int i = 0; i < 50; ++i)
        EXPECT_EQ(loc0.call<&echo_scaled>(1, i).get(), 100 + i);
      return 0;
    });
    dom.wait_all_quiescent();
    auto const s = dom.fabric().faults().stats();
    EXPECT_GT(s.duplicates, 0u);
    // 50 calls = 100 data frames (request + response). Every arriving data
    // copy is acked, so acks - 100 counts exactly the duplicated *data*
    // copies, each of which must be suppressed exactly once. (The fault
    // plane's duplicate total is larger: it also duplicates ack frames,
    // which handle_ack absorbs silently.)
    auto const dup_delta = builtin().net_dup_suppressed.load() - before_dup;
    EXPECT_EQ(dup_delta, builtin().net_acks.load() - before_acks - 100u);
    EXPECT_GT(dup_delta, 0u);
    EXPECT_LE(dup_delta, s.duplicates);
  }
  EXPECT_EQ(builtin().net_retransmits.load() - before_retx, 0u);
}

TEST(LossyFabric, AckRacingRetryDrainsInFlight) {
  // Regression: an ack landing while the RTO callback is mid-retry must
  // not leak the in-flight obligation — the retry installs its fresh
  // timer token under the link lock before dropping it, so the ack always
  // finds a cancellable token. A near-zero backoff puts the RTO deadline
  // right inside the held-ack arrival window (data hold + ack hold ==
  // 2 * reorder_hold ~= the hold-widened RTO), maximizing collisions; the
  // assertion that matters is that wait_all_quiescent() returns.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.3;
  cfg.faults.duplicate = 0.05;
  cfg.faults.reorder = 0.1;
  cfg.faults.reorder_hold_us = 30.0;
  cfg.faults.seed = 1337;
  cfg.reliability.initial_backoff_us = 1.0;
  cfg.reliability.backoff_multiplier = 1.5;
  cfg.reliability.max_backoff_us = 50.0;
  cfg.reliability.max_retries = 64;

  auto const before_retx = builtin().net_retransmits.load();
  px::dist::distributed_domain dom(cfg);
  dom.run([](px::dist::locality& loc0) {
    std::vector<px::future<int>> fs;
    fs.reserve(200);
    for (int i = 0; i < 200; ++i)
      fs.push_back(loc0.call<&echo_scaled>(1, i));
    for (int i = 0; i < 200; ++i) EXPECT_EQ(fs[i].get(), 100 + i);
    return 0;
  });
  dom.wait_all_quiescent();  // must drain: no leaked obligations
  EXPECT_GT(builtin().net_retransmits.load() - before_retx, 0u);
}

TEST(LossyFabric, BarrierReleasesSurviveLoss) {
  // Barrier releases are acknowledged calls: on a lossy fabric a dropped
  // release is retransmitted instead of silently leaving a participant
  // blocked in released.get() forever.
  px::dist::domain_config cfg;
  cfg.num_localities = 3;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.2;
  cfg.faults.seed = 99;
  cfg.reliability.initial_backoff_us = 50.0;

  px::dist::distributed_domain dom(cfg);
  auto ids = dom.run([](px::dist::locality& loc0) {
    return px::dist::gather<&lossy_barrier_participant>(loc0,
                                                        std::uint64_t{4});
  });
  ASSERT_EQ(ids.size(), 3u);
  for (int l = 0; l < 3; ++l) EXPECT_EQ(ids[l], l);
  dom.wait_all_quiescent();
}

TEST(LossyFabric, RetryBudgetExhaustionFailsTheFuture) {
  // Total loss and a zero retry budget: the call future must fail with
  // delivery_error (instead of hanging) and quiesce must terminate.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.faults.drop = 1.0;
  cfg.reliability.max_retries = 0;
  cfg.reliability.initial_backoff_us = 50.0;

  auto const before_fail = builtin().net_delivery_failures.load();
  px::dist::distributed_domain dom(cfg);
  bool caught = dom.run([](px::dist::locality& loc0) {
    auto f = loc0.call<&echo_scaled>(1, 5);
    try {
      (void)f.get();
      return false;
    } catch (px::net::delivery_error const& e) {
      EXPECT_EQ(e.source(), 0u);
      EXPECT_EQ(e.dest(), 1u);
      EXPECT_EQ(e.attempts(), 1);
      return true;
    }
  });
  EXPECT_TRUE(caught);
  dom.wait_all_quiescent();  // must return despite 100% loss
  EXPECT_GE(builtin().net_delivery_failures.load() - before_fail, 1u);
}

TEST(LossyFabric, TryGatherToleratesTotalRemoteLoss) {
  px::dist::domain_config cfg;
  cfg.num_localities = 3;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.faults.drop = 1.0;
  cfg.reliability.max_retries = 0;
  cfg.reliability.initial_backoff_us = 50.0;

  px::dist::distributed_domain dom(cfg);
  auto ok = dom.run([](px::dist::locality& loc0) {
    auto r = px::dist::try_gather<&echo_scaled>(loc0, 7);
    // Locality 0 never touches the wire; 1 and 2 are unreachable.
    return r.size() == 3 && r[0].has_value() && *r[0] == 7 &&
           !r[1].has_value() && !r[2].has_value();
  });
  EXPECT_TRUE(ok);
  dom.wait_all_quiescent();
}

TEST(LossyFabric, ForcedReliabilityStaysExactWithoutFaults) {
  // activation=on over a clean fabric: acks and seqs flow but results are
  // unchanged — the layer is transparent to program semantics.
  px::dist::domain_config cfg;
  cfg.num_localities = 3;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.reliability.activation = px::net::reliability_config::mode::on;

  auto const before_acks = builtin().net_acks.load();
  px::dist::distributed_domain dom(cfg);
  ASSERT_TRUE(dom.reliable());
  auto initial = px::stencil::heat1d_sine_initial(301);
  px::stencil::dist_heat_config hc;
  hc.steps = 10;
  auto result = run_distributed_heat1d(dom, initial, hc);
  auto ref = px::stencil::reference_heat1d(initial, hc.steps, hc.k);
  EXPECT_LT(px::stencil::max_abs_diff(result.values, ref), 1e-13);
  dom.wait_all_quiescent();
  EXPECT_GT(builtin().net_acks.load() - before_acks, 0u);
}

// ---- dead letters --------------------------------------------------------

TEST(DeadLetters, PutRacingCloseIsACountedDrop) {
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;

  auto const before = builtin().net_dead_letters.load();
  px::dist::distributed_domain dom(cfg);
  dom.run([&dom](px::dist::locality& loc0) {
    auto ch = px::dist::remote_channel<double>::create(dom.at(1));
    ch.close(dom.at(1));
    ch.send(loc0, 3.14);  // arrives after close: dead letter, not a throw
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(builtin().net_dead_letters.load() - before, 1u);
}

}  // namespace
