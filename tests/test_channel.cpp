// Tests for channel / bounded_channel, including the MPMC stress and the
// halo-exchange pattern the 1D solver uses.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "px/px.hpp"

namespace {

struct ChannelTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 4;
    return c;
  }()};
};

TEST_F(ChannelTest, SendThenReceive) {
  px::channel<int> ch;
  ch.send(42);
  EXPECT_EQ(ch.buffered(), 1u);
  EXPECT_EQ(ch.get(), 42);
  EXPECT_EQ(ch.buffered(), 0u);
}

TEST_F(ChannelTest, ReceiveBeforeSend) {
  px::channel<int> ch;
  auto f = ch.receive();
  EXPECT_FALSE(f.is_ready());
  ch.send(7);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 7);
}

TEST_F(ChannelTest, FifoOrderAmongValues) {
  px::channel<int> ch;
  for (int i = 0; i < 10; ++i) ch.send(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ch.get(), i);
}

TEST_F(ChannelTest, FifoOrderAmongReceivers) {
  px::channel<int> ch;
  auto f1 = ch.receive();
  auto f2 = ch.receive();
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(f1.get(), 1);
  EXPECT_EQ(f2.get(), 2);
}

TEST_F(ChannelTest, MoveOnlyPayload) {
  px::channel<std::unique_ptr<int>> ch;
  ch.send(std::make_unique<int>(9));
  EXPECT_EQ(*ch.get(), 9);
}

TEST_F(ChannelTest, CloseFailsPendingReceivers) {
  px::channel<int> ch;
  auto f = ch.receive();
  ch.close();
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(ch.receive().get(), std::runtime_error);
}

TEST_F(ChannelTest, CloseKeepsBufferedValuesReadable) {
  px::channel<int> ch;
  ch.send(5);
  ch.close();
  EXPECT_EQ(ch.get(), 5);
  EXPECT_THROW(ch.receive().get(), std::runtime_error);
}

TEST_F(ChannelTest, TaskSuspendsOnEmptyChannel) {
  px::channel<int> ch;
  auto result = px::sync_wait(rt, [&ch] {
    px::post([&ch] {
      px::this_task::sleep_for(std::chrono::milliseconds(15));
      ch.send(3);
    });
    return ch.get();  // suspends the fiber
  });
  EXPECT_EQ(result, 3);
}

TEST_F(ChannelTest, MpmcStressDeliversEverythingOnce) {
  px::channel<int> ch;
  constexpr int producers = 4, consumers = 4, per_producer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  for (int c = 0; c < consumers; ++c)
    rt.post([&] {
      for (;;) {
        int v = ch.get();
        if (v < 0) return;
        sum.fetch_add(v);
        received.fetch_add(1);
      }
    });
  for (int p = 0; p < producers; ++p)
    rt.post([&, p] {
      for (int i = 0; i < per_producer; ++i)
        ch.send(p * per_producer + i + 1);
    });
  rt.post([&] {
    while (received.load() < producers * per_producer)
      px::this_task::yield();
    for (int c = 0; c < consumers; ++c) ch.send(-1);
  });
  rt.wait_quiescent();
  long const n = producers * per_producer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST_F(ChannelTest, BoundedBackpressureBlocksSender) {
  px::bounded_channel<int> ch(2);
  std::atomic<int> sent{0};
  rt.post([&] {
    for (int i = 0; i < 5; ++i) {
      ch.send(i);
      sent.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LE(sent.load(), 3);  // 2 buffered + possibly 1 in flight
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.get(), i);
  rt.wait_quiescent();
  EXPECT_EQ(sent.load(), 5);
}

TEST_F(ChannelTest, BoundedRendezvousWithWaitingReceiver) {
  px::bounded_channel<int> ch(1);
  auto f = ch.receive();
  rt.post([&] { ch.send(11); });
  EXPECT_EQ(f.get(), 11);
}

TEST_F(ChannelTest, HaloExchangePattern) {
  // Two "partitions" exchanging boundary values every step, the 1D stencil
  // communication pattern.
  px::channel<double> to_left, to_right;
  constexpr int steps = 50;
  auto left_final = px::async_on(rt, [&] {
    double edge = 1.0;
    for (int t = 0; t < steps; ++t) {
      to_right.send(edge);
      double const neighbour = to_left.get();
      edge = 0.5 * (edge + neighbour);
    }
    return edge;
  });
  auto right_final = px::async_on(rt, [&] {
    double edge = 3.0;
    for (int t = 0; t < steps; ++t) {
      to_left.send(edge);
      double const neighbour = to_right.get();
      edge = 0.5 * (edge + neighbour);
    }
    return edge;
  });
  EXPECT_NEAR(left_final.get(), 2.0, 1e-9);
  EXPECT_NEAR(right_final.get(), 2.0, 1e-9);
}

}  // namespace
