// Tests for the field2d container in both scalar and pack (VNS) modes:
// element views, boundaries, halo construction.
#include <gtest/gtest.h>

#include "px/stencil/field2d.hpp"
#include "px/stencil/jacobi2d.hpp"

namespace {

using px::simd::pack;
using px::stencil::field2d;

TEST(Field2dScalar, SetGetRoundtrip) {
  field2d<double> f(8, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 8; ++x)
      f.set(x, y, static_cast<double>(10 * y + x));
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 8; ++x)
      EXPECT_DOUBLE_EQ(f.get(x, y), static_cast<double>(10 * y + x));
}

TEST(Field2dScalar, ShapeAndStride) {
  field2d<float> f(16, 3);
  EXPECT_EQ(f.nx(), 16u);
  EXPECT_EQ(f.ny(), 3u);
  EXPECT_EQ(f.cells(), 16u);           // scalar: one cell per element
  EXPECT_EQ(f.row_stride(), 18u);      // + 2 ghosts
  EXPECT_EQ(f.interior_bytes(), 16u * 3u * sizeof(float));
}

TEST(Field2dScalar, BoundariesLiveInGhostCells) {
  field2d<double> f(4, 2);
  f.set_left_boundary(1, -1.0);
  f.set_right_boundary(0, -2.0);
  f.set_top_boundary(2, -3.0);
  f.set_bottom_boundary(3, -4.0);
  EXPECT_DOUBLE_EQ(f.left_boundary(1), -1.0);
  EXPECT_DOUBLE_EQ(f.right_boundary(0), -2.0);
  EXPECT_DOUBLE_EQ(f.top_boundary_value(2), -3.0);
  EXPECT_DOUBLE_EQ(f.bottom_boundary_value(3), -4.0);
  EXPECT_DOUBLE_EQ(f.cell(0, 2), -1.0);      // storage view agrees
  EXPECT_DOUBLE_EQ(f.cell(5, 1), -2.0);
}

using PackCell = pack<double, 4>;

TEST(Field2dPack, ShapeUsesLanes) {
  field2d<PackCell> f(16, 3);
  EXPECT_EQ(f.cells(), 4u);        // 16 scalars / 4 lanes
  EXPECT_EQ(f.row_stride(), 6u);   // + 2 halo packs
  EXPECT_TRUE(field2d<PackCell>::vectorized);
}

TEST(Field2dPack, SetGetRoundtripThroughVnsMapping) {
  field2d<PackCell> f(16, 2);
  for (std::size_t y = 0; y < 2; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      f.set(x, y, static_cast<double>(100 * y + x));
  for (std::size_t y = 0; y < 2; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      EXPECT_DOUBLE_EQ(f.get(x, y), static_cast<double>(100 * y + x));
  // Spot-check the underlying layout: lane l of cell j is x = l*cells + j.
  // Storage row 2 = interior row 1; slot 2, lane 3 -> x = 3*4 + 2 = 14.
  EXPECT_DOUBLE_EQ(f.cell(1 + 2, 2).v[3], 100.0 + 3 * 4 + 2);
}

TEST(Field2dPack, HaloRefreshBuildsSeams) {
  field2d<PackCell> f(16, 1);
  for (std::size_t x = 0; x < 16; ++x)
    f.set(x, 0, static_cast<double>(x));
  f.set_left_boundary(0, -5.0);
  f.set_right_boundary(0, 55.0);
  f.refresh_row_halos(1);  // storage row of interior row 0

  // Left halo pack: lane l holds the left neighbour of x = l*4, i.e.
  // ghost for lane 0 and x = l*4 - 1 otherwise.
  auto const& lh = f.cell(0, 1);
  EXPECT_DOUBLE_EQ(lh.v[0], -5.0);
  EXPECT_DOUBLE_EQ(lh.v[1], 3.0);
  EXPECT_DOUBLE_EQ(lh.v[2], 7.0);
  EXPECT_DOUBLE_EQ(lh.v[3], 11.0);
  // Right halo pack: lane l holds the right neighbour of x = l*4 + 3.
  auto const& rh = f.cell(f.cells() + 1, 1);
  EXPECT_DOUBLE_EQ(rh.v[0], 4.0);
  EXPECT_DOUBLE_EQ(rh.v[1], 8.0);
  EXPECT_DOUBLE_EQ(rh.v[2], 12.0);
  EXPECT_DOUBLE_EQ(rh.v[3], 55.0);
}

TEST(Field2dPack, ScalarAndPackFieldsAgreeAfterIdenticalWrites) {
  field2d<double> s(8, 3);
  field2d<pack<double, 2>> p(8, 3);
  for (std::size_t y = 0; y < 3; ++y)
    for (std::size_t x = 0; x < 8; ++x) {
      double const v = std::sin(static_cast<double>(x + 10 * y));
      s.set(x, y, v);
      p.set(x, y, v);
    }
  for (std::size_t y = 0; y < 3; ++y)
    for (std::size_t x = 0; x < 8; ++x)
      EXPECT_DOUBLE_EQ(s.get(x, y), p.get(x, y));
}

TEST(Field2dPack, NonLaneMultipleRowsUsePaddedSegments) {
  // nx = 12 with W = 8 used to be rejected; padded VNS segments now store
  // it as cells() = ceil(12/8) = 2 packs with 4 trailing pad scalars.
  field2d<pack<float, 8>> f(12, 2);
  EXPECT_EQ(f.cells(), 2u);
  EXPECT_EQ(f.padding(), 4u);
  for (std::size_t y = 0; y < 2; ++y)
    for (std::size_t x = 0; x < 12; ++x)
      f.set(x, y, float(x + 100 * y));
  for (std::size_t y = 0; y < 2; ++y)
    for (std::size_t x = 0; x < 12; ++x)
      ASSERT_EQ(f.get(x, y), float(x + 100 * y)) << x << "," << y;
}

// ---- typed invariants across all cell types -------------------------------

template <typename Cell>
class Field2dTyped : public ::testing::Test {};

using CellTypes = ::testing::Types<double, float, pack<double, 2>,
                                   pack<double, 4>, pack<float, 4>,
                                   pack<float, 8>, pack<float, 16>>;
TYPED_TEST_SUITE(Field2dTyped, CellTypes);

TYPED_TEST(Field2dTyped, InteriorWriteReadIsIdentity) {
  using scalar = typename field2d<TypeParam>::scalar;
  constexpr std::size_t lanes = field2d<TypeParam>::lanes;
  field2d<TypeParam> f(lanes * 6, 5);
  for (std::size_t y = 0; y < f.ny(); ++y)
    for (std::size_t x = 0; x < f.nx(); ++x)
      f.set(x, y, static_cast<scalar>(x * 31 + y * 7));
  for (std::size_t y = 0; y < f.ny(); ++y)
    for (std::size_t x = 0; x < f.nx(); ++x)
      ASSERT_EQ(f.get(x, y), static_cast<scalar>(x * 31 + y * 7))
          << "x=" << x << " y=" << y;
}

TYPED_TEST(Field2dTyped, BoundaryAccessorsRoundtrip) {
  using scalar = typename field2d<TypeParam>::scalar;
  constexpr std::size_t lanes = field2d<TypeParam>::lanes;
  field2d<TypeParam> f(lanes * 4, 3);
  for (std::size_t y = 0; y < f.ny(); ++y) {
    f.set_left_boundary(y, static_cast<scalar>(100 + y));
    f.set_right_boundary(y, static_cast<scalar>(200 + y));
  }
  for (std::size_t x = 0; x < f.nx(); ++x) {
    f.set_top_boundary(x, static_cast<scalar>(300 + x));
    f.set_bottom_boundary(x, static_cast<scalar>(400 + x));
  }
  for (std::size_t y = 0; y < f.ny(); ++y) {
    EXPECT_EQ(f.left_boundary(y), static_cast<scalar>(100 + y));
    EXPECT_EQ(f.right_boundary(y), static_cast<scalar>(200 + y));
  }
  for (std::size_t x = 0; x < f.nx(); ++x) {
    EXPECT_EQ(f.top_boundary_value(x), static_cast<scalar>(300 + x));
    EXPECT_EQ(f.bottom_boundary_value(x), static_cast<scalar>(400 + x));
  }
}

TYPED_TEST(Field2dTyped, BoundariesDoNotAliasInterior) {
  using scalar = typename field2d<TypeParam>::scalar;
  constexpr std::size_t lanes = field2d<TypeParam>::lanes;
  field2d<TypeParam> f(lanes * 4, 3);
  for (std::size_t y = 0; y < f.ny(); ++y)
    for (std::size_t x = 0; x < f.nx(); ++x)
      f.set(x, y, scalar(1));
  for (std::size_t y = 0; y < f.ny(); ++y) {
    f.set_left_boundary(y, scalar(9));
    f.set_right_boundary(y, scalar(9));
  }
  for (std::size_t x = 0; x < f.nx(); ++x) {
    f.set_top_boundary(x, scalar(9));
    f.set_bottom_boundary(x, scalar(9));
  }
  for (std::size_t y = 0; y < f.ny(); ++y)
    for (std::size_t x = 0; x < f.nx(); ++x)
      ASSERT_EQ(f.get(x, y), scalar(1));
}

TYPED_TEST(Field2dTyped, HaloRefreshIsIdempotent) {
  using scalar = typename field2d<TypeParam>::scalar;
  constexpr std::size_t lanes = field2d<TypeParam>::lanes;
  field2d<TypeParam> f(lanes * 4, 3);
  for (std::size_t y = 0; y < f.ny(); ++y)
    for (std::size_t x = 0; x < f.nx(); ++x)
      f.set(x, y, static_cast<scalar>(x + y));
  f.refresh_all_halos();
  // Snapshot a cell row, refresh again, compare.
  auto const before = f.cell(0, 1);
  f.refresh_all_halos();
  auto const after = f.cell(0, 1);
  if constexpr (field2d<TypeParam>::vectorized) {
    for (std::size_t l = 0; l < lanes; ++l)
      ASSERT_EQ(before[l], after[l]);
  } else {
    ASSERT_EQ(before, after);
  }
}

TYPED_TEST(Field2dTyped, OneJacobiSweepMatchesScalarField) {
  using scalar = typename field2d<TypeParam>::scalar;
  constexpr std::size_t lanes = field2d<TypeParam>::lanes;
  std::size_t const nx = lanes * 4, ny = 4;

  field2d<TypeParam> a0(nx, ny), a1(nx, ny);
  field2d<double> s0(nx, ny), s1(nx, ny);
  for (auto setup = 0; setup < 1; ++setup) {
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x) {
        double const v = 0.25 * static_cast<double>((x * 13 + y * 5) % 9);
        a0.set(x, y, static_cast<scalar>(v));
        s0.set(x, y, v);
      }
    a0.refresh_all_halos();
    a1.refresh_all_halos();
    s0.refresh_all_halos();
  }
  for (std::size_t y = 1; y <= ny; ++y) {
    jacobi2d_row_update(a0, a1, y);
    jacobi2d_row_update(s0, s1, y);
  }
  double const tol = std::is_same_v<scalar, float> ? 1e-6 : 0.0;
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x)
      ASSERT_NEAR(static_cast<double>(a1.get(x, y)), s1.get(x, y), tol)
          << "x=" << x << " y=" << y;
}

}  // namespace
