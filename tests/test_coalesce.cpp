// Tests for parcel coalescing + payload compression under the ack/RTO
// layer (px/net/compress, px/net/coalesce, the distributed_domain wiring)
// and the latent-bug sweep of the reliability hot path that rode along:
// dedup-window sequence wraparound, flush-at-quiesce ordering, and the
// fixed-point counter-mirror units under coalesced/compressed frames.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/net/coalesce.hpp"
#include "px/net/compress.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"

namespace {

int coalesce_echo(px::dist::locality& here, int x) {
  return static_cast<int>(here.id()) * 100 + x;
}

std::atomic<int> sink_hits{0};

int coalesce_sink(px::dist::locality&, int) {
  sink_hits.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

}  // namespace

PX_REGISTER_ACTION(coalesce_echo)
PX_REGISTER_ACTION(coalesce_sink)

namespace {

using px::counters::builtin;

// ---- LZ compressor -------------------------------------------------------

std::vector<std::byte> bytes_of(std::string const& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

void roundtrip(std::vector<std::byte> const& in) {
  auto const z = px::net::lz_compress(in.data(), in.size());
  auto const back = px::net::lz_decompress(z.data(), z.size(), in.size());
  ASSERT_EQ(back, in);
}

TEST(LzCompress, RoundtripsEmptyAndTiny) {
  roundtrip({});
  roundtrip(bytes_of("a"));
  roundtrip(bytes_of("abc"));
  roundtrip(bytes_of("abcd"));
}

TEST(LzCompress, RepetitiveInputShrinks) {
  std::vector<std::byte> in(8192, std::byte{0x42});
  auto const z = px::net::lz_compress(in.data(), in.size());
  EXPECT_LT(z.size(), in.size() / 10);  // pure RLE case
  roundtrip(in);
}

TEST(LzCompress, PeriodicPayloadShrinks) {
  // A halo-like payload: repeated 8-byte doubles with slow drift.
  std::vector<std::byte> in;
  for (int i = 0; i < 1000; ++i) {
    double const v = 1.0 + (i / 100) * 0.5;
    auto const* p = reinterpret_cast<std::byte const*>(&v);
    in.insert(in.end(), p, p + sizeof v);
  }
  auto const z = px::net::lz_compress(in.data(), in.size());
  EXPECT_LT(z.size(), in.size() / 2);
  roundtrip(in);
}

TEST(LzCompress, RandomInputRoundtripsWithBoundedExpansion) {
  std::mt19937_64 rng(12345);
  std::vector<std::byte> in(4096);
  for (auto& b : in) b = std::byte(rng() & 0xff);
  auto const z = px::net::lz_compress(in.data(), in.size());
  // Incompressible input grows by at most the literal-run headers (1/128)
  // plus rounding.
  EXPECT_LE(z.size(), in.size() + in.size() / 128 + 4);
  roundtrip(in);
}

TEST(LzCompress, OverlappingMatchesRoundtrip) {
  // "abab..." forces offset-2 matches that overlap their own output.
  std::vector<std::byte> in;
  for (int i = 0; i < 500; ++i) in.push_back(std::byte(i % 2 ? 'a' : 'b'));
  roundtrip(in);
}

TEST(LzCompress, CorruptStreamsThrowNotTruncate) {
  std::vector<std::byte> in(256, std::byte{7});
  auto z = px::net::lz_compress(in.data(), in.size());
  // Wrong decoded size is a hard error in both directions.
  EXPECT_THROW((void)px::net::lz_decompress(z.data(), z.size(), 255),
               std::runtime_error);
  EXPECT_THROW((void)px::net::lz_decompress(z.data(), z.size(), 257),
               std::runtime_error);
  // Truncated stream.
  EXPECT_THROW(
      (void)px::net::lz_decompress(z.data(), z.size() - 1, in.size()),
      std::runtime_error);
  // A match token with offset 0 is never emitted and must be rejected.
  std::vector<std::byte> bad = {std::byte{0x80}, std::byte{0}, std::byte{0}};
  EXPECT_THROW((void)px::net::lz_decompress(bad.data(), bad.size(), 4),
               std::runtime_error);
}

// ---- coalesced-frame codec ----------------------------------------------

std::vector<px::parcel::parcel> sample_batch(std::size_t n) {
  std::vector<px::parcel::parcel> batch;
  for (std::size_t i = 0; i < n; ++i) {
    px::parcel::parcel p;
    p.source = 0;
    p.dest = 1;
    p.action = 42 + static_cast<std::uint32_t>(i);
    p.response_token = 1000 + i;
    p.seq = 7 + i;
    p.epoch = 3;
    p.target = px::agas::gid::make(1, 0xabc + i);
    p.payload.assign(16 + i, std::byte(static_cast<unsigned char>(i)));
    batch.push_back(std::move(p));
  }
  return batch;
}

void expect_batch_equal(std::vector<px::parcel::parcel> const& a,
                        std::vector<px::parcel::parcel> const& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].dest, b[i].dest);
    EXPECT_EQ(a[i].action, b[i].action);
    EXPECT_EQ(a[i].response_token, b[i].response_token);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(CoalesceCodec, RawRoundtripPreservesEveryField) {
  auto const batch = sample_batch(5);
  px::net::coalescing_config cfg;
  auto const env = px::net::encode_coalesced_frame(batch, cfg);
  EXPECT_EQ(env.action, px::parcel::coalesced_action_id);
  EXPECT_EQ(env.source, 0u);
  EXPECT_EQ(env.dest, 1u);
  EXPECT_EQ(env.seq, 0u);  // the envelope itself is unsequenced
  expect_batch_equal(px::net::decode_coalesced_frame(env), batch);
}

TEST(CoalesceCodec, CompressedRoundtripAndByteAccounting) {
  auto batch = sample_batch(8);
  for (auto& p : batch) p.payload.assign(512, std::byte{0x5a});
  px::net::coalescing_config cfg;
  cfg.compress = true;
  cfg.compress_min_bytes = 64;
  std::size_t in_bytes = 0, out_bytes = 0;
  auto const env =
      px::net::encode_coalesced_frame(batch, cfg, &in_bytes, &out_bytes);
  EXPECT_GT(in_bytes, 0u);
  EXPECT_GT(out_bytes, 0u);
  EXPECT_LT(out_bytes, in_bytes);
  EXPECT_LT(env.payload.size(), in_bytes);  // really shipped compressed
  expect_batch_equal(px::net::decode_coalesced_frame(env), batch);
}

TEST(CoalesceCodec, IncompressibleBatchShipsRaw) {
  // A big random payload: the LZ literal-run overhead (~1 byte per 128
  // literals) outweighs the few compressible zero runs in the subheaders,
  // so the whole envelope must ship raw. (Small random payloads are NOT
  // enough — the subheader zeros alone make those envelopes shrink.)
  std::mt19937_64 rng(99);
  auto batch = sample_batch(1);
  batch[0].payload.resize(16 * 1024);
  for (auto& b : batch[0].payload) b = std::byte(rng() & 0xff);
  px::net::coalescing_config cfg;
  cfg.compress = true;
  std::size_t in_bytes = 0, out_bytes = 0;
  auto const env =
      px::net::encode_coalesced_frame(batch, cfg, &in_bytes, &out_bytes);
  // Compression did not pay: codec byte says raw, accounting untouched.
  EXPECT_EQ(static_cast<unsigned>(env.payload[0]), 0u);
  EXPECT_EQ(in_bytes, 0u);
  EXPECT_EQ(out_bytes, 0u);
  expect_batch_equal(px::net::decode_coalesced_frame(env), batch);

  // The min-bytes gate skips the compressor outright for small bodies,
  // whatever their content.
  auto small = sample_batch(2);
  for (auto& p : small) p.payload.assign(512, std::byte{0x5a});
  px::net::coalescing_config gated;
  gated.compress = true;
  gated.compress_min_bytes = 1 << 20;
  std::size_t gin = 0, gout = 0;
  auto const genv = px::net::encode_coalesced_frame(small, gated, &gin, &gout);
  EXPECT_EQ(static_cast<unsigned>(genv.payload[0]), 0u);
  EXPECT_EQ(gin, 0u);
  EXPECT_EQ(gout, 0u);
  expect_batch_equal(px::net::decode_coalesced_frame(genv), small);
}

TEST(CoalesceCodec, CorruptEnvelopesThrow) {
  auto const env =
      px::net::encode_coalesced_frame(sample_batch(3), {});
  auto truncated = env;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW((void)px::net::decode_coalesced_frame(truncated),
               std::runtime_error);
  auto bad_codec = env;
  bad_codec.payload[0] = std::byte{9};
  EXPECT_THROW((void)px::net::decode_coalesced_frame(bad_codec),
               std::runtime_error);
  auto trailing = env;
  trailing.payload.push_back(std::byte{0});
  EXPECT_THROW((void)px::net::decode_coalesced_frame(trailing),
               std::runtime_error);
  px::parcel::parcel not_envelope;
  not_envelope.action = 5;
  EXPECT_THROW((void)px::net::decode_coalesced_frame(not_envelope),
               std::runtime_error);
}

// ---- env knobs -----------------------------------------------------------

TEST(CoalesceEnv, StrictTokenParsingRejectsTrailingGarbage) {
  px::net::coalescing_config base;
  base.enabled = false;
  base.compress = false;

  ::setenv("PX_NET_COALESCE", "on", 1);
  EXPECT_TRUE(px::net::coalescing_config::from_env(base).enabled);
  ::setenv("PX_NET_COALESCE", "off", 1);
  EXPECT_FALSE(px::net::coalescing_config::from_env(base).enabled);
  // env_token is exact-match: case, whitespace and trailing garbage all
  // make the value malformed, which leaves the base config untouched.
  for (char const* bad : {"ON", "on ", " on", "on,compress", "1", "true"}) {
    ::setenv("PX_NET_COALESCE", bad, 1);
    EXPECT_FALSE(px::net::coalescing_config::from_env(base).enabled)
        << "accepted malformed token: '" << bad << "'";
  }
  ::unsetenv("PX_NET_COALESCE");

  ::setenv("PX_NET_COMPRESS", "on", 1);
  EXPECT_TRUE(px::net::coalescing_config::from_env(base).compress);
  ::setenv("PX_NET_COMPRESS", "yes", 1);  // env_bool form, not allowed here
  EXPECT_FALSE(px::net::coalescing_config::from_env(base).compress);
  ::unsetenv("PX_NET_COMPRESS");
}

TEST(CoalesceEnv, NumericKnobsApplyAndRejectGarbage) {
  px::net::coalescing_config base;
  ::setenv("PX_NET_COALESCE_MAX_PARCELS", "32", 1);
  ::setenv("PX_NET_COALESCE_MAX_BYTES", "8192", 1);
  ::setenv("PX_NET_COALESCE_FLUSH_US", "125.5", 1);
  auto got = px::net::coalescing_config::from_env(base);
  EXPECT_EQ(got.max_parcels, 32u);
  EXPECT_EQ(got.max_bytes, 8192u);
  EXPECT_DOUBLE_EQ(got.flush_delay_us, 125.5);
  ::setenv("PX_NET_COALESCE_MAX_PARCELS", "32x", 1);
  ::setenv("PX_NET_COALESCE_FLUSH_US", "0", 1);  // must stay > 0
  got = px::net::coalescing_config::from_env(base);
  EXPECT_EQ(got.max_parcels, base.max_parcels);
  EXPECT_DOUBLE_EQ(got.flush_delay_us, base.flush_delay_us);
  ::unsetenv("PX_NET_COALESCE_MAX_PARCELS");
  ::unsetenv("PX_NET_COALESCE_MAX_BYTES");
  ::unsetenv("PX_NET_COALESCE_FLUSH_US");
}

// ---- dedup-window wraparound (bugfix satellite) --------------------------

TEST(DedupWindowWrap, AcceptsAcrossTheWrapEdgeExactlyOnce) {
  constexpr std::uint64_t max = ~std::uint64_t{0};
  px::net::dedup_window w;
  w.start_from(max - 2);
  // Pre-wrap seqs.
  EXPECT_TRUE(w.accept(max - 2));
  EXPECT_TRUE(w.accept(max - 1));
  EXPECT_TRUE(w.accept(max));
  EXPECT_EQ(w.floor(), max);
  // Post-wrap: the counter skips 0 (reserved) and continues at 1. The
  // historical `seq <= floor_` guard classified every one of these as a
  // duplicate — delivery stopped dead at the wrap edge.
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  EXPECT_EQ(w.floor(), 2u);
  // Exactly-once still holds in both eras.
  EXPECT_FALSE(w.accept(max));
  EXPECT_FALSE(w.accept(1));
  EXPECT_FALSE(w.accept(2));
  EXPECT_TRUE(w.accept(3));
}

TEST(DedupWindowWrap, OutOfOrderGapSpanningTheWrapCloses) {
  constexpr std::uint64_t max = ~std::uint64_t{0};
  px::net::dedup_window w;
  w.start_from(max - 1);
  // Arrive out of order across the edge: 2, max, 1, max-1.
  EXPECT_TRUE(w.accept(2));
  EXPECT_TRUE(w.accept(max));
  EXPECT_EQ(w.floor(), max - 2);  // nothing contiguous yet
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(max - 1));
  EXPECT_EQ(w.floor(), 2u);  // the whole run collapsed through the wrap
  EXPECT_EQ(w.pending_gaps(), 0u);
  EXPECT_FALSE(w.accept(max));
  EXPECT_FALSE(w.accept(2));
}

TEST(DedupWindowWrap, SeqZeroIsNeverAccepted) {
  px::net::dedup_window w;
  w.start_from(~std::uint64_t{0});
  EXPECT_FALSE(w.accept(0));  // reserved for unsequenced frames
  EXPECT_TRUE(w.accept(~std::uint64_t{0}));
  EXPECT_TRUE(w.accept(1));
}

TEST(DedupWindowWrap, SerialHelpersWrap) {
  constexpr std::uint64_t max = ~std::uint64_t{0};
  EXPECT_TRUE(px::net::seq_precedes(max, 1));
  EXPECT_FALSE(px::net::seq_precedes(1, max));
  EXPECT_TRUE(px::net::seq_precedes(max - 5, max));
  EXPECT_FALSE(px::net::seq_precedes(7, 7));
  EXPECT_EQ(px::net::seq_successor(1), 2u);
  EXPECT_EQ(px::net::seq_successor(max), 1u);  // skips reserved 0
}

TEST(DedupWindowWrap, ReliableLinkSurvivesForcedWrap) {
  // Integration shape of the same bug: a reliable domain whose links start
  // their seq counters a handful below UINT64_MAX. Before the serial-
  // arithmetic fix, the first post-wrap parcel was swallowed as a
  // duplicate and the calls below hung (RTO retransmissions are rejected
  // the same way, so the retry budget fails the future).
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  cfg.reliability.initial_seq = ~std::uint64_t{0} - 10;

  px::dist::distributed_domain dom(cfg);
  ASSERT_TRUE(dom.reliable());
  dom.run([](px::dist::locality& loc0) {
    // 25 request/response pairs = 50 seqs over the (0,1)/(1,0) links:
    // comfortably across the wrap on both.
    for (int i = 0; i < 25; ++i)
      EXPECT_EQ(loc0.call<&coalesce_echo>(1, i).get(), 100 + i);
    return 0;
  });
  dom.wait_all_quiescent();
}

// ---- coalescing end-to-end ----------------------------------------------

px::dist::domain_config coalesce_cfg(bool compress = false) {
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.coalescing.enabled = true;
  cfg.coalescing.compress = compress;
  return cfg;
}

TEST(Coalescing, ManySmallParcelsRideFewFrames) {
  auto const before_frames = builtin().net_frames_on_wire.load();
  auto const before_coalesced = builtin().net_coalesced_parcels.load();
  sink_hits.store(0);
  {
    px::dist::distributed_domain dom(coalesce_cfg());
    ASSERT_TRUE(dom.coalescing());
    dom.run([](px::dist::locality& loc0) {
      for (int i = 0; i < 160; ++i) loc0.apply<&coalesce_sink>(1, i);
      return 0;
    });
    dom.wait_all_quiescent();
  }
  EXPECT_EQ(sink_hits.load(), 160);
  auto const frames = builtin().net_frames_on_wire.load() - before_frames;
  auto const coalesced =
      builtin().net_coalesced_parcels.load() - before_coalesced;
  EXPECT_EQ(coalesced, 160u);
  // 160 parcels at max_parcels=16 is at least 10 full envelopes; frames
  // must be far below one-per-parcel.
  EXPECT_LE(frames, 40u);
  EXPECT_GE(frames, 10u);
}

TEST(Coalescing, SizeThresholdFlushes) {
  auto const before_size = builtin().net_flushes_size.load();
  {
    px::dist::distributed_domain dom(coalesce_cfg());
    dom.run([](px::dist::locality& loc0) {
      for (int i = 0; i < 64; ++i) loc0.apply<&coalesce_sink>(1, i);
      return 0;
    });
    dom.wait_all_quiescent();
  }
  EXPECT_GE(builtin().net_flushes_size.load() - before_size, 3u);
}

TEST(Coalescing, DeadlineFlushDrainsWithoutExplicitFlush) {
  // A single buffered parcel, far below every size threshold: only the
  // deadline timer can put it on the wire. The response completes the
  // future, so get() returning proves the deadline fired.
  auto const before_deadline = builtin().net_flushes_deadline.load();
  auto cfg = coalesce_cfg();
  cfg.coalescing.flush_delay_us = 200.0;
  px::dist::distributed_domain dom(cfg);
  int const got = dom.run([](px::dist::locality& loc0) {
    return loc0.call<&coalesce_echo>(1, 7).get();
  });
  EXPECT_EQ(got, 107);
  dom.wait_all_quiescent();
  EXPECT_GE(builtin().net_flushes_deadline.load() - before_deadline, 1u);
}

TEST(Coalescing, QuiesceFlushesBufferedParcels) {
  // Flush-at-quiesce regression (bugfix satellite): parcels sitting in a
  // coalescing buffer hold in-flight obligations, and with an effectively
  // infinite deadline nothing else can release them. wait_all_quiescent
  // must flush the buffers itself before blocking on the obligation CV —
  // the interleaving where it slept first was a permanent hang.
  auto cfg = coalesce_cfg();
  cfg.coalescing.flush_delay_us = 3600.0 * 1e6;  // one hour: never fires
  sink_hits.store(0);
  px::dist::distributed_domain dom(cfg);
  dom.run([](px::dist::locality& loc0) {
    for (int i = 0; i < 5; ++i) loc0.apply<&coalesce_sink>(1, i);
    return 0;
  });
  ASSERT_TRUE(dom.wait_all_quiescent_for(std::chrono::seconds(30)));
  EXPECT_EQ(sink_hits.load(), 5);
}

TEST(Coalescing, ExplicitFlushCountsAndDelivers) {
  auto const before_explicit = builtin().net_flushes_explicit.load();
  auto cfg = coalesce_cfg();
  cfg.coalescing.flush_delay_us = 3600.0 * 1e6;
  sink_hits.store(0);
  px::dist::distributed_domain dom(cfg);
  dom.run([&dom](px::dist::locality& loc0) {
    for (int i = 0; i < 3; ++i) loc0.apply<&coalesce_sink>(1, i);
    dom.flush_coalescing();
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(sink_hits.load(), 3);
  EXPECT_GE(builtin().net_flushes_explicit.load() - before_explicit, 1u);
}

TEST(Coalescing, CompressionCountersAndRatioGauge) {
  auto const before_in = builtin().net_compress_in_bytes.load();
  auto const before_out = builtin().net_compressed_bytes.load();
  {
    px::dist::distributed_domain dom(coalesce_cfg(/*compress=*/true));
    dom.run([](px::dist::locality& loc0) {
      // Highly redundant payloads: int arguments serialize into mostly
      // zero bytes, and 16 subheaders per envelope share structure.
      for (int i = 0; i < 128; ++i) loc0.apply<&coalesce_sink>(1, 0);
      return 0;
    });
    dom.wait_all_quiescent();
  }
  auto const in_delta = builtin().net_compress_in_bytes.load() - before_in;
  auto const out_delta =
      builtin().net_compressed_bytes.load() - before_out;
  EXPECT_GT(in_delta, 0u);
  EXPECT_GT(out_delta, 0u);
  EXPECT_LT(out_delta, in_delta);
  // The derived gauge reads the same two cells, fixed-point x1000.
  std::uint64_t ratio = 0;
  ASSERT_TRUE(px::counters::registry::instance().value_of(
      "/px/net/compress_ratio_x1000", ratio));
  EXPECT_GE(ratio, 1000u);  // in >= out by construction
}

TEST(Coalescing, ModeledNsMirrorStaysExactUnderCoalescing) {
  // Fixed-point counter-mirror units (bugfix satellite): every wire frame
  // — coalesced, compressed or plain — must convert modeled_us to the
  // x1000 fixed-point exactly once, so the registry mirror
  // /px/net/modeled_ns equals the fabric-side cell to the nanosecond.
  auto const before_ns = builtin().net_modeled_ns.load();
  px::dist::distributed_domain dom(coalesce_cfg(/*compress=*/true));
  dom.run([](px::dist::locality& loc0) {
    for (int i = 0; i < 100; ++i) loc0.apply<&coalesce_sink>(1, i);
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(loc0.call<&coalesce_echo>(1, i).get(), 100 + i);
    return 0;
  });
  dom.wait_all_quiescent();
  auto const fabric_side =
      dom.fabric().counters().modeled_us_x1000.load();
  EXPECT_GT(fabric_side, 0u);
  EXPECT_EQ(builtin().net_modeled_ns.load() - before_ns, fabric_side);
}

TEST(Coalescing, ReliableCoalescedCallsComplete) {
  // Coalescing under the ack/RTO layer on a clean fabric: seqs, acks and
  // responses all ride envelopes, and results are unchanged.
  auto cfg = coalesce_cfg();
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  // The no-spurious-retransmit assertion below needs the RTO to sit far
  // above any scheduling slowdown (the sanitizer lane runs 3-5x slow);
  // acks cancel the timers, so a huge backoff costs nothing on the clean
  // path.
  cfg.reliability.initial_backoff_us = 50'000.0;
  cfg.reliability.max_backoff_us = 100'000.0;
  auto const before_frames = builtin().net_frames_on_wire.load();
  auto const before_retx = builtin().net_retransmits.load();
  px::dist::distributed_domain dom(cfg);
  ASSERT_TRUE(dom.reliable());
  ASSERT_TRUE(dom.coalescing());
  dom.run([](px::dist::locality& loc0) {
    std::vector<px::future<int>> fs;
    for (int i = 0; i < 64; ++i)
      fs.push_back(loc0.call<&coalesce_echo>(1, i));
    for (int i = 0; i < 64; ++i) EXPECT_EQ(fs[i].get(), 100 + i);
    return 0;
  });
  dom.wait_all_quiescent();
  // Acks coalesce too, so the whole exchange fits in few frames — and a
  // clean fabric plus flush-widened RTOs means no spurious retransmits.
  EXPECT_LT(builtin().net_frames_on_wire.load() - before_frames, 128u);
  EXPECT_EQ(builtin().net_retransmits.load() - before_retx, 0u);
}

TEST(Coalescing, LossyCoalescedHeatBitwiseIdentical) {
  // One representative lossy seed in tier-1 (the 16-seed sweep lives in
  // test_torture_coalesce): drop/dup/reorder whole envelopes and the heat
  // solver must still be bitwise identical to the clean run.
  auto initial = px::stencil::heat1d_sine_initial(401);
  px::stencil::dist_heat_config hc;
  hc.steps = 12;

  px::dist::domain_config clean;
  clean.num_localities = 2;
  clean.locality_cfg.num_workers = 2;
  clean.injection_scale = 0.0;
  px::dist::distributed_domain clean_dom(clean);
  auto const r_clean = run_distributed_heat1d(clean_dom, initial, hc);

  auto cfg = coalesce_cfg(/*compress=*/true);
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.05;
  cfg.faults.duplicate = 0.02;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = 4242;
  px::dist::distributed_domain dom(cfg);
  ASSERT_TRUE(dom.reliable());
  ASSERT_TRUE(dom.coalescing());
  auto const r = run_distributed_heat1d(dom, initial, hc);
  dom.wait_all_quiescent();
  ASSERT_EQ(r.values.size(), r_clean.values.size());
  EXPECT_TRUE(r.values == r_clean.values);
  EXPECT_GT(dom.fabric().faults().stats().drops, 0u);
}

TEST(Coalescing, EnvKnobEnablesDomainWithoutCodeChange) {
  ::setenv("PX_NET_COALESCE", "on", 1);
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  ASSERT_FALSE(cfg.coalescing.enabled);
  px::dist::distributed_domain dom(cfg);
  EXPECT_TRUE(dom.coalescing());
  ::unsetenv("PX_NET_COALESCE");
  px::dist::distributed_domain off(cfg);
  EXPECT_FALSE(off.coalescing());
}

}  // namespace
