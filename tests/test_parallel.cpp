// Tests for the parallel algorithms and executors, with parameterized size
// sweeps covering empty, tiny, chunk-boundary and large inputs.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "px/px.hpp"

namespace {

struct ParallelTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 4;
    return c;
  }()};
};

// Parameterized over input size, exercising chunk boundary conditions.
class ForEachSizes : public ParallelTest,
                     public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ForEachSizes, DoublesEveryElement) {
  std::size_t const n = GetParam();
  std::vector<long> v(n);
  std::iota(v.begin(), v.end(), 0L);
  px::sync_wait(rt, [&v] {
    px::parallel::for_each(px::execution::par, v.begin(), v.end(),
                           [](long& x) { x *= 2; });
    return 0;
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(v[i], static_cast<long>(2 * i));
}

TEST_P(ForEachSizes, ForLoopTouchesEveryIndexOnce) {
  std::size_t const n = GetParam();
  std::vector<std::atomic<int>> touched(n);
  for (auto& t : touched) t.store(0);
  px::sync_wait(rt, [&] {
    px::parallel::for_loop(px::execution::par, 0, n,
                           [&](std::size_t i) { touched[i].fetch_add(1); });
    return 0;
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(touched[i].load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForEachSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 31, 32, 33, 100,
                                           1000, 4096, 10001));

class ChunkSizes : public ParallelTest,
                   public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ChunkSizes, ExplicitChunkingIsCorrect) {
  std::size_t const chunk = GetParam();
  std::vector<int> v(1000, 1);
  px::sync_wait(rt, [&] {
    px::parallel::for_each(px::execution::par.with(chunk), v.begin(), v.end(),
                           [](int& x) { ++x; });
    return 0;
  });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 2000);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizes,
                         ::testing::Values(1, 2, 3, 10, 100, 999, 1000,
                                           5000));

TEST_F(ParallelTest, SequencedPolicyRunsInline) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  int order_check = 0;
  bool ordered = true;
  px::parallel::for_each(px::execution::seq, v.begin(), v.end(),
                         [&](int x) { ordered = ordered && (x == order_check++); });
  EXPECT_TRUE(ordered);  // seq preserves order, needs no runtime
}

TEST_F(ParallelTest, TransformMatchesStd) {
  std::vector<int> in(5000), out(5000), expect(5000);
  std::iota(in.begin(), in.end(), -2500);
  std::transform(in.begin(), in.end(), expect.begin(),
                 [](int x) { return x * x - 1; });
  px::sync_wait(rt, [&] {
    px::parallel::transform(px::execution::par, in.begin(), in.end(),
                            out.begin(), [](int x) { return x * x - 1; });
    return 0;
  });
  EXPECT_EQ(out, expect);
}

TEST_F(ParallelTest, ReduceMatchesStd) {
  std::vector<long> v(10007);
  std::iota(v.begin(), v.end(), 1L);
  long const expect = std::accumulate(v.begin(), v.end(), 0L);
  long const got = px::sync_wait(rt, [&] {
    return px::parallel::reduce(px::execution::par, v.begin(), v.end(), 0L,
                                std::plus<>{});
  });
  EXPECT_EQ(got, expect);
}

TEST_F(ParallelTest, ReduceWithNonCommutativeIsStillDeterministicChunked) {
  // max is associative+commutative; use it to verify chunk combination.
  std::vector<int> v(5000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<int>((i * 37) % 4999);
  int const got = px::sync_wait(rt, [&] {
    return px::parallel::reduce(px::execution::par, v.begin(), v.end(), 0,
                                [](int a, int b) { return a > b ? a : b; });
  });
  EXPECT_EQ(got, *std::max_element(v.begin(), v.end()));
}

TEST_F(ParallelTest, TransformReduceDotProduct) {
  std::vector<double> v(4001, 2.0);
  double const got = px::sync_wait(rt, [&] {
    return px::parallel::transform_reduce(
        px::execution::par, v.begin(), v.end(), 0.0, std::plus<>{},
        [](double x) { return x * x; });
  });
  EXPECT_DOUBLE_EQ(got, 4.0 * 4001);
}

TEST_F(ParallelTest, FillAndCopy) {
  std::vector<int> a(3000, 0), b(3000, 0);
  px::sync_wait(rt, [&] {
    px::parallel::fill(px::execution::par, a.begin(), a.end(), 9);
    px::parallel::copy(px::execution::par, a.begin(), a.end(), b.begin());
    return 0;
  });
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0L), 27000L);
}

TEST_F(ParallelTest, ExceptionInChunkPropagates) {
  std::vector<int> v(1000, 1);
  EXPECT_THROW(px::sync_wait(rt, [&] {
                 px::parallel::for_each(px::execution::par, v.begin(),
                                        v.end(), [](int& x) {
                                          if (x == 1)
                                            throw std::runtime_error("bad");
                                        });
                 return 0;
               }),
               std::runtime_error);
}

TEST_F(ParallelTest, WorksFromExternalThreadWithBoundExecutor) {
  std::vector<int> v(500, 1);
  px::thread_pool_executor ex(rt.sched());
  px::parallel::for_each(px::execution::par.on(ex), v.begin(), v.end(),
                         [](int& x) { ++x; });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 1000);
}

TEST_F(ParallelTest, BlockExecutorPlacementIsBlockwise) {
  px::block_executor ex(rt.sched());
  std::size_t const chunks = 8;
  // 8 chunks over 4 workers: chunks {0,1}->w0, {2,3}->w1, ...
  for (std::size_t c = 0; c < chunks; ++c)
    EXPECT_EQ(ex.placement(c, chunks), static_cast<int>(c / 2));
}

TEST_F(ParallelTest, BlockExecutorKeepsChunkOnSameWorkerAcrossCalls) {
  px::block_executor ex(rt.sched());
  auto policy = px::execution::par.on(ex).with(100);
  std::vector<std::size_t> first(10, 99), second(10, 98);
  std::vector<int> data(1000);
  px::sync_wait(rt, [&] {
    px::parallel::for_loop(policy, 0, data.size(), [&](std::size_t i) {
      first[i / 100] = px::this_task::worker_index();
    });
    px::parallel::for_loop(policy, 0, data.size(), [&](std::size_t i) {
      second[i / 100] = px::this_task::worker_index();
    });
    return 0;
  });
  // First-touch emulation: each chunk revisits the worker that touched it.
  EXPECT_EQ(first, second);
}

TEST_F(ParallelTest, LimitingExecutorUsesOnlyRequestedWorkers) {
  px::limiting_executor ex(rt.sched(), 2);
  std::set<std::size_t> seen;
  px::spinlock lock;
  px::sync_wait(rt, [&] {
    px::parallel::for_loop(px::execution::par.on(ex).with(16), 0, 256,
                           [&](std::size_t) {
                             std::lock_guard<px::spinlock> g(lock);
                             seen.insert(px::this_task::worker_index());
                           });
    return 0;
  });
  for (auto w : seen) EXPECT_LT(w, 2u);
}

TEST_F(ParallelTest, NestedParallelism) {
  std::atomic<long> total{0};
  px::sync_wait(rt, [&] {
    px::parallel::for_loop(px::execution::par, 0, 8, [&](std::size_t) {
      px::parallel::for_loop(px::execution::par, 0, 100,
                             [&](std::size_t) { total.fetch_add(1); });
    });
    return 0;
  });
  EXPECT_EQ(total.load(), 800);
}

}  // namespace
