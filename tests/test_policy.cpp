// Tests for the pluggable scheduling-policy API (px/sched/policy.hpp):
// factory + env selection with strict parsing, lane creation and accounting,
// lane inheritance through spawn trees, exact stride-fair (wfq) and
// strict-priority service order on a single worker, and the structural
// contracts (hinted spawns bypass lanes, ws_policy ignores lanes).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/px.hpp"
#include "px/sched/lane_policies.hpp"
#include "px/sched/ws_policy.hpp"
#include "px/support/env.hpp"

namespace {

namespace sched = px::sched;

px::scheduler_config pool(std::size_t workers, char const* policy) {
  px::scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.policy_name = policy;
  return cfg;
}

// RAII setenv/unsetenv for the env-override tests.
struct scoped_env {
  scoped_env(char const* name, char const* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~scoped_env() { ::unsetenv(name_); }
  char const* name_;
};

// ---- factory & selection -------------------------------------------------

TEST(PolicyFactory, KnownNamesConstruct) {
  EXPECT_TRUE(sched::is_policy_name("ws"));
  EXPECT_TRUE(sched::is_policy_name("wfq"));
  EXPECT_TRUE(sched::is_policy_name("priority"));
  EXPECT_FALSE(sched::is_policy_name("lifo"));
  EXPECT_FALSE(sched::is_policy_name("WS"));
  EXPECT_FALSE(sched::is_policy_name(""));

  EXPECT_STREQ(sched::make_policy("ws")->name(), "ws");
  EXPECT_STREQ(sched::make_policy("wfq")->name(), "wfq");
  EXPECT_STREQ(sched::make_policy("priority")->name(), "priority");
}

TEST(PolicyFactory, DefaultConfigIsWorkStealing) {
  px::runtime rt(pool(2, "ws"));
  EXPECT_STREQ(rt.sched().policy().name(), "ws");
  // Lane-less: create_lane is accepted but routes everything to the
  // default lane.
  EXPECT_EQ(rt.sched().policy().create_lane({"x", 2.0, 0}),
            sched::lane_default);
  EXPECT_EQ(rt.sched().policy().lane_count(), 0u);
}

TEST(PolicyFactory, ConfigFactoryWinsOverName) {
  px::scheduler_config cfg = pool(2, "ws");
  cfg.policy = [] { return std::make_unique<sched::wfq_policy>(); };
  px::runtime rt(cfg);
  EXPECT_STREQ(rt.sched().policy().name(), "wfq");
}

TEST(PolicyEnv, SchedPolicyOverrideAppliesAndRejectsGarbage) {
  {
    scoped_env e("PX_SCHED_POLICY", "wfq");
    EXPECT_EQ(px::scheduler_config::from_env().policy_name, "wfq");
  }
  {
    scoped_env e("PX_SCHED_POLICY", "priority");
    EXPECT_EQ(px::scheduler_config::from_env().policy_name, "priority");
  }
  // Strict parsing: trailing garbage, case drift and unknown names fall
  // back to the default (with a one-shot stderr warning), never to a
  // half-parsed value.
  for (char const* bad : {"ws ", " ws", "WFQ", "wfqx", "weighted"}) {
    scoped_env e("PX_SCHED_POLICY", bad);
    EXPECT_EQ(px::scheduler_config::from_env().policy_name, "ws")
        << "value '" << bad << "' should have been rejected";
  }
}

TEST(PolicyEnv, TokenParserContract) {
  {
    scoped_env e("PX_TOKEN_TEST", "beta");
    auto v = px::env_token("PX_TOKEN_TEST", {"alpha", "beta"});
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "beta");
  }
  {
    scoped_env e("PX_TOKEN_TEST", "beta2");
    EXPECT_FALSE(px::env_token("PX_TOKEN_TEST", {"alpha", "beta"}));
  }
  EXPECT_FALSE(px::env_token("PX_TOKEN_TEST_UNSET", {"alpha"}));
}

// ---- lanes ----------------------------------------------------------------

TEST(LanePolicy, CreateLaneAndCounters) {
  px::runtime rt(pool(2, "wfq"));
  auto& pol = rt.sched().policy();
  EXPECT_EQ(pol.lane_count(), 1u);  // the default lane
  sched::lane_id const a = pol.create_lane({"a", 2.0, 0});
  sched::lane_id const b = pol.create_lane({"b", 1.0, 1});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(pol.lane_count(), 3u);
  EXPECT_EQ(pol.lane_queued(a), 0u);
  EXPECT_EQ(pol.lane_queued(99), 0u);  // unknown id: 0, not UB

  // The scheduler publishes the lane count as a gauge.
  std::uint64_t lanes = 0;
  ASSERT_TRUE(px::counters::registry::instance().value_of(
      "/px/scheduler{" + rt.counter_instance() + "}/lanes", lanes));
  EXPECT_EQ(lanes, 3u);
}

TEST(LanePolicy, SpawnsCompleteOnEveryPolicy) {
  for (char const* name : {"ws", "wfq", "priority"}) {
    px::runtime rt(pool(4, name));
    auto& pol = rt.sched().policy();
    sched::lane_id const lane = pol.create_lane({"t", 1.0, 0});
    std::atomic<int> n{0};
    for (int i = 0; i < 500; ++i)
      rt.sched().spawn([&n] { n.fetch_add(1); }, -1,
                       i % 2 ? lane : sched::lane_default);
    rt.wait_quiescent();
    EXPECT_EQ(n.load(), 500) << "policy " << name;
    EXPECT_EQ(pol.lane_queued(lane), 0u) << "policy " << name;
  }
}

TEST(LanePolicy, ChildrenInheritTheSpawningTasksLane) {
  px::runtime rt(pool(2, "wfq"));
  sched::lane_id const lane = rt.sched().policy().create_lane({"t", 1.0, 0});
  std::atomic<std::uint32_t> parent_lane{~0u}, child_lane{~0u};
  rt.sched().spawn(
      [&] {
        parent_lane = px::this_task::lane();
        // Both the ambient-async path and a bare spawn must inherit.
        px::async([&] { child_lane = px::this_task::lane(); }).get();
      },
      -1, lane);
  rt.wait_quiescent();
  EXPECT_EQ(parent_lane.load(), lane);
  EXPECT_EQ(child_lane.load(), lane);
}

TEST(LanePolicy, HintedSpawnBypassesLanesButKeepsBilling) {
  // Strict placement goes through the target worker's injection queue —
  // never a lane queue — but the task still carries its lane for billing
  // and inheritance.
  px::runtime rt(pool(2, "wfq"));
  sched::lane_id const lane = rt.sched().policy().create_lane({"t", 1.0, 0});
  std::atomic<std::uint32_t> seen_lane{~0u};
  std::atomic<std::size_t> seen_worker{99};
  rt.sched().spawn(
      [&] {
        seen_lane = px::this_task::lane();
        seen_worker = px::this_task::worker_index();
      },
      /*hint=*/1, lane);
  rt.wait_quiescent();
  EXPECT_EQ(seen_lane.load(), lane);
  EXPECT_EQ(seen_worker.load(), 1u);
}

// ---- service order --------------------------------------------------------

// Holds the single worker busy (spinning, not suspending) while the
// external thread enqueues lane work, then releases it and records the
// order the lane tasks are served in. Single worker + run-to-completion
// tasks means completion order IS the policy's dequeue order.
template <typename Enqueue>
std::vector<std::uint32_t> service_order(px::runtime& rt, Enqueue&& enqueue,
                                         std::size_t expected) {
  std::atomic<bool> gate{false};
  std::atomic<bool> gate_running{false};
  rt.sched().spawn([&] {
    gate_running = true;
    while (!gate.load(std::memory_order_acquire)) {
    }
  });
  while (!gate_running.load(std::memory_order_acquire)) {
  }

  std::vector<std::uint32_t> order(expected, ~0u);
  std::atomic<std::size_t> next{0};
  enqueue([&order, &next](std::uint32_t tag) {
    return [&order, &next, tag] {
      order[next.fetch_add(1, std::memory_order_relaxed)] = tag;
    };
  });
  gate.store(true, std::memory_order_release);
  rt.wait_quiescent();
  EXPECT_EQ(next.load(), expected);
  return order;
}

TEST(WfqPolicy, StrideSchedulingServesWeightedShares) {
  px::runtime rt(pool(1, "wfq"));
  sched::lane_id heavy = 0, light = 0;
  heavy = rt.sched().policy().create_lane({"heavy", 3.0, 0});
  light = rt.sched().policy().create_lane({"light", 1.0, 0});

  std::size_t const per_lane = 40;
  auto order = service_order(
      rt,
      [&](auto mk) {
        for (std::size_t i = 0; i < per_lane; ++i) {
          rt.sched().spawn(mk(0), -1, heavy);
          rt.sched().spawn(mk(1), -1, light);
        }
      },
      2 * per_lane);

  // Over any saturated prefix the heavy lane receives ~3x the light lane's
  // service. Check the first half (both lanes still backlogged there).
  std::size_t heavy_served = 0, light_served = 0;
  for (std::size_t i = 0; i < per_lane; ++i) {
    if (order[i] == 0) ++heavy_served;
    if (order[i] == 1) ++light_served;
  }
  ASSERT_GT(light_served, 0u);
  double const ratio = static_cast<double>(heavy_served) /
                       static_cast<double>(light_served);
  EXPECT_NEAR(ratio, 3.0, 0.6) << "heavy=" << heavy_served
                               << " light=" << light_served;
}

TEST(WfqPolicy, IdleLaneForfeitsCredit) {
  // A lane that sat idle must not monopolize the pool on return: its pass
  // is caught up to the current virtual time, so service stays interleaved
  // rather than back-paying the idle period.
  px::runtime rt(pool(1, "wfq"));
  auto& pol = rt.sched().policy();
  sched::lane_id const a = pol.create_lane({"a", 1.0, 0});
  sched::lane_id const b = pol.create_lane({"b", 1.0, 0});

  // Phase 1: only lane a runs — advances a's pass far beyond b's.
  std::atomic<int> n{0};
  for (int i = 0; i < 64; ++i) rt.sched().spawn([&n] { ++n; }, -1, a);
  rt.wait_quiescent();

  // Phase 2: both lanes backlogged; b must not run 64 tasks ahead.
  std::size_t const per_lane = 24;
  auto order = service_order(
      rt,
      [&](auto mk) {
        for (std::size_t i = 0; i < per_lane; ++i) {
          rt.sched().spawn(mk(0), -1, a);
          rt.sched().spawn(mk(1), -1, b);
        }
      },
      2 * per_lane);
  // Equal weights -> the first 2k served contain ~k of each.
  std::size_t b_in_first_half = 0;
  for (std::size_t i = 0; i < per_lane; ++i)
    if (order[i] == 1) ++b_in_first_half;
  EXPECT_NEAR(static_cast<double>(b_in_first_half), per_lane / 2.0, 3.0);
}

TEST(PriorityPolicy, UrgentLaneDrainsFirst) {
  px::runtime rt(pool(1, "priority"));
  auto& pol = rt.sched().policy();
  sched::lane_id const urgent = pol.create_lane({"urgent", 1.0, 0});
  sched::lane_id const bulk = pol.create_lane({"bulk", 1.0, 5});

  std::size_t const per_lane = 32;
  auto order = service_order(
      rt,
      [&](auto mk) {
        // Interleave submissions; service must still be strict.
        for (std::size_t i = 0; i < per_lane; ++i) {
          rt.sched().spawn(mk(1), -1, bulk);
          rt.sched().spawn(mk(0), -1, urgent);
        }
      },
      2 * per_lane);
  // Every urgent task precedes every bulk task.
  for (std::size_t i = 0; i < per_lane; ++i)
    EXPECT_EQ(order[i], 0u) << "position " << i;
  for (std::size_t i = per_lane; i < 2 * per_lane; ++i)
    EXPECT_EQ(order[i], 1u) << "position " << i;
}

}  // namespace
