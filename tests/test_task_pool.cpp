// Task-block pool (PR 5 spawn hot path): steady-state spawns must not
// touch the global allocator. The whole binary replaces operator new —
// including the aligned form the pool's miss path actually uses, which does
// NOT forward to the plain overload — and the acceptance test spawns a
// warm batch while asserting the allocation counter stands still.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "px/counters/counters.hpp"
#include "px/px.hpp"
#include "px/runtime/task_pool.hpp"

// ---- global allocation guard ----------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc{};
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

// ---- pool primitives -------------------------------------------------------

TEST(TaskFreelist, GetPutRoundTrip) {
  px::rt::task_freelist fl;
  EXPECT_EQ(fl.get(), nullptr);  // empty: caller must allocate
  alignas(64) static std::byte blocks[4][256];
  for (auto& b : blocks) EXPECT_TRUE(fl.put(b));
  EXPECT_EQ(fl.cached(), 4u);
  // LIFO: the hottest (most recently retired) block comes back first.
  EXPECT_EQ(fl.get(), static_cast<void*>(blocks[3]));
  EXPECT_EQ(fl.get(), static_cast<void*>(blocks[2]));
  EXPECT_EQ(fl.cached(), 2u);
}

TEST(TaskFreelist, BoundedAndOverflowRefused) {
  px::rt::task_freelist fl(/*max_cached=*/2);
  alignas(64) static std::byte blocks[3][256];
  EXPECT_TRUE(fl.put(blocks[0]));
  EXPECT_TRUE(fl.put(blocks[1]));
  EXPECT_FALSE(fl.put(blocks[2]));  // full: caller routes to shared level
  EXPECT_EQ(fl.cached(), 2u);
}

TEST(TaskBlockPool, SharedLevelBatchedHandoff) {
  px::rt::task_block_pool pool;
  alignas(64) static std::byte blocks[8][256];
  for (auto& b : blocks) EXPECT_TRUE(pool.put(b));
  void* out[16];
  std::size_t const n = pool.get_batch(out, 16);
  EXPECT_EQ(n, 8u);  // hands over what it has, never allocates
  EXPECT_EQ(pool.get_batch(out, 16), 0u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(pool.put(out[i]));
  std::size_t drained = 0;
  while (pool.take_one() != nullptr) ++drained;
  EXPECT_EQ(drained, 8u);
}

TEST(TaskBlockPool, BoundedAndCapacityFreedByTakers) {
  px::rt::task_block_pool pool(/*max_blocks=*/2);
  alignas(64) static std::byte blocks[3][256];
  EXPECT_TRUE(pool.put(blocks[0]));
  EXPECT_TRUE(pool.put(blocks[1]));
  EXPECT_FALSE(pool.put(blocks[2]));  // full: caller frees instead
  // get_batch/take_one release capacity — the bound tracks live contents,
  // not lifetime puts (a full-then-drained pool accepts blocks again).
  void* out[2];
  EXPECT_EQ(pool.get_batch(out, 2), 2u);
  EXPECT_TRUE(pool.put(blocks[2]));
  EXPECT_NE(pool.take_one(), nullptr);
  EXPECT_TRUE(pool.put(blocks[0]));
  EXPECT_TRUE(pool.put(blocks[1]));
  EXPECT_FALSE(pool.put(blocks[2]));
  while (pool.take_one() != nullptr) {
  }
}

// ---- the acceptance property ----------------------------------------------

px::scheduler_config cfg() {
  px::scheduler_config c;
  c.num_workers = 2;
  return c;
}

constexpr int batch = 256;

// One spawn/drain cycle driven from inside task-land (worker-thread spawns
// are the pooled path; external threads legitimately hit the allocator).
// The orchestrator fans out `batch` children and spin-yields until all ran;
// no futures or latches — their shared state would allocate and hide the
// property under test.
void spawn_drain_cycle(px::runtime& rt, std::atomic<std::uint64_t>* delta) {
  std::atomic<bool> done{false};
  rt.post([&rt, &done, delta] {
    std::atomic<int> ran{0};
    std::uint64_t const before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < batch; ++i) {
      rt.sched().spawn(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    while (ran.load(std::memory_order_relaxed) < batch) px::this_task::yield();
    if (delta != nullptr) {
      delta->store(g_allocs.load(std::memory_order_relaxed) - before,
                   std::memory_order_relaxed);
    }
    done.store(true, std::memory_order_release);
  });
  rt.wait_quiescent();
  ASSERT_TRUE(done.load(std::memory_order_acquire));
}

TEST(TaskPool, SteadyStateSpawnIsAllocationFree) {
  px::runtime rt(cfg());
  // Warm-up: grow the deques, the stack pool and both pool levels to the
  // working-set high-water mark. Several rounds so every worker's freelist
  // has seen the batch.
  for (int round = 0; round < 4; ++round) spawn_drain_cycle(rt, nullptr);

  std::atomic<std::uint64_t> delta{~std::uint64_t{0}};
  spawn_drain_cycle(rt, &delta);
  // The measured region covers this binary's only running threads (the
  // main thread is blocked in wait_quiescent), so a zero delta means the
  // spawn path — task block, fiber, unique_function, queue links — touched
  // no allocator at all.
  EXPECT_EQ(delta.load(), 0u)
      << "steady-state spawn allocated; the task-block pool or the "
         "unique_function SBO regressed";
}

TEST(TaskPool, HitCountersVisibleInRegistry) {
  px::runtime rt(cfg());
  for (int round = 0; round < 2; ++round) spawn_drain_cycle(rt, nullptr);
  auto const stats = rt.stats();
  EXPECT_GT(stats.task_pool_hits, 0u);

  // Per-worker counters are registered under the scheduler instance.
  auto& reg = px::counters::registry::instance();
  std::string const prefix =
      "/px/scheduler{" + rt.counter_instance() + "/worker#0}/";
  std::uint64_t hits = 0;
  ASSERT_TRUE(reg.value_of(prefix + "task_pool_hits", hits));
  std::uint64_t misses = 0;
  ASSERT_TRUE(reg.value_of(prefix + "task_pool_misses", misses));
}

TEST(TaskPool, BlocksRecycleAcrossRuntimes) {
  // The scheduler destructor must return every pooled block to the
  // allocator: cycling runtimes under the guard must not leak (ASan/LSan
  // lanes catch the leak itself; here we just exercise the drain path).
  for (int i = 0; i < 3; ++i) {
    px::runtime rt(cfg());
    spawn_drain_cycle(rt, nullptr);
  }
  SUCCEED();
}

}  // namespace
