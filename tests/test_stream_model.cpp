// Tests for the STREAM bandwidth model behind Fig 2 and the NUMA effects
// behind the Fig 5/8 performance dips.
#include <gtest/gtest.h>

#include "px/arch/stream_model.hpp"

namespace {

using namespace px::arch;

TEST(StreamModel, SingleCoreBandwidthIsPerCore) {
  for (auto const& m : paper_machines()) {
    stream_model sm(m);
    EXPECT_DOUBLE_EQ(sm.copy_bandwidth_gbs(1), m.stream_per_core_gbs)
        << m.short_name;
  }
}

TEST(StreamModel, FullNodeReachesStreamPeak) {
  for (auto const& m : paper_machines()) {
    stream_model sm(m);
    EXPECT_NEAR(sm.copy_bandwidth_gbs(m.total_cores()), m.stream_peak_gbs,
                m.stream_peak_gbs * 0.01)
        << m.short_name;
  }
}

TEST(StreamModel, CopyBandwidthIsMonotoneNondecreasing) {
  for (auto const& m : paper_machines()) {
    stream_model sm(m);
    double prev = 0.0;
    for (std::size_t c = 1; c <= m.total_cores(); ++c) {
      double const bw = sm.copy_bandwidth_gbs(c);
      EXPECT_GE(bw, prev - 1e-9) << m.short_name << " cores " << c;
      prev = bw;
    }
  }
}

TEST(StreamModel, SaturatesWithinADomain) {
  machine m = kunpeng916();  // 16 cores/domain, 27.5 GB/s per domain
  stream_model sm(m);
  double const dom = m.domain_bandwidth_gbs();
  // Late in the domain, adding cores stops helping.
  EXPECT_NEAR(sm.copy_bandwidth_gbs(16), dom, 1e-9);
  EXPECT_NEAR(sm.copy_bandwidth_gbs(8), dom, dom * 0.5);
  EXPECT_LT(sm.copy_bandwidth_gbs(2), dom);
}

TEST(StreamModel, SweepCoversAllCoreCounts) {
  stream_model sm(xeon_e5_2660v3());
  auto pts = sm.sweep();
  ASSERT_EQ(pts.size(), 20u);
  EXPECT_EQ(pts.front().cores, 1u);
  EXPECT_EQ(pts.back().cores, 20u);
}

TEST(StreamModel, KernelBandwidthDipsWithPartialDomain) {
  // The §VII-B observation on Kunpeng 916: 40 cores (2.5 domains) performs
  // *worse* than 32 cores (2 full domains).
  stream_model sm(kunpeng916());
  EXPECT_LT(sm.kernel_bandwidth_gbs(40), sm.kernel_bandwidth_gbs(32));
  // And recovers by 48 (3 full domains).
  EXPECT_GT(sm.kernel_bandwidth_gbs(48), sm.kernel_bandwidth_gbs(32));
}

TEST(StreamModel, KernelBandwidthDipsAtFullOccupancyOnKunpeng) {
  // The 56->64 core dip: full occupancy evicts OS/runtime threads.
  stream_model sm(kunpeng916());
  EXPECT_LT(sm.kernel_bandwidth_gbs(64), sm.kernel_bandwidth_gbs(56));
}

TEST(StreamModel, NoFullOccupancyDipOnA64FX) {
  // A64FX has 4 dedicated helper cores; 48 compute cores carry no penalty.
  stream_model sm(a64fx());
  EXPECT_GT(sm.kernel_bandwidth_gbs(48), sm.kernel_bandwidth_gbs(47));
}

TEST(StreamModel, KernelNeverExceedsCopy) {
  for (auto const& m : paper_machines()) {
    stream_model sm(m);
    for (std::size_t c = 1; c <= m.total_cores(); ++c)
      EXPECT_LE(sm.kernel_bandwidth_gbs(c), sm.copy_bandwidth_gbs(c) + 1e-9)
          << m.short_name << " cores " << c;
  }
}

TEST(StreamModel, Fig2ShapeA64FXDominates) {
  // At every core count up to 48, A64FX's HBM2 curve sits far above the
  // DDR machines — the headline of Fig 2.
  stream_model a(a64fx()), x(xeon_e5_2660v3()), k(kunpeng916()),
      t(thunderx2());
  for (std::size_t c : {1u, 8u, 16u, 20u}) {
    EXPECT_GT(a.copy_bandwidth_gbs(c), x.copy_bandwidth_gbs(c)) << c;
    EXPECT_GT(a.copy_bandwidth_gbs(c), k.copy_bandwidth_gbs(c)) << c;
    EXPECT_GT(a.copy_bandwidth_gbs(c), t.copy_bandwidth_gbs(c)) << c;
  }
}

}  // namespace
