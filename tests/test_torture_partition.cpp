// Partition torture: seed-swept split-brain runs over a lossy, coalescing,
// acked fabric. Pins the PR's safety properties at scale:
//   (a) migration tours across a partition/heal cycle keep exactly one
//       resident copy per GID (explicit census + the domain's
//       agas-single-residence invariant at quiesce) and leak no
//       obligations, with minority-side destinations refused via typed
//       fenced_error while the cut is up;
//   (b) a checkpointed distributed heat solve that rides out a partition
//       shorter than the confirm threshold recovers without any eviction
//       or rollback and stays bitwise identical to a fault-free run — the
//       reliability layer's RTOs span the outage, the quorum rule keeps
//       both sides alive, and fenced checkpoints are skipped, not lost.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/dist/membership.hpp"
#include "px/dist/migration.hpp"
#include "px/net/fault_plane.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/invariant.hpp"

namespace {

struct split_cell {
  std::uint64_t tag = 0;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& tag;
  }
};

px::agas::gid tp_make(px::dist::locality& here, std::uint64_t tag) {
  auto cell = std::make_shared<split_cell>();
  cell->tag = tag;
  return here.agas().bind(std::move(cell));
}

std::uint64_t tp_read(px::dist::locality& here, px::agas::gid g) {
  auto cell = here.agas().resolve<split_cell>(g);
  if (cell == nullptr) throw std::runtime_error("split_cell not resident");
  return cell->tag;
}

px::agas::gid tp_hop(px::dist::locality& here, px::agas::gid g,
                     std::uint32_t dest) {
  return px::dist::migrate<split_cell>(here, g, dest).get();
}

int tp_contains(px::dist::locality& here, px::agas::gid g) {
  return here.agas().contains(g) ? 1 : 0;
}

}  // namespace

PX_REGISTER_ACTION(tp_make)
PX_REGISTER_ACTION(tp_read)
PX_REGISTER_ACTION(tp_hop)
PX_REGISTER_ACTION(tp_contains)
PX_REGISTER_MIGRATABLE(split_cell)

namespace {

namespace torture = px::torture;
using px::counters::builtin;
using namespace std::chrono_literals;

constexpr std::size_t split_localities = 5;  // majority {0,1,2} | minority {3,4}

px::dist::domain_config split_cfg(std::uint64_t seed) {
  px::dist::domain_config cfg;
  cfg.num_localities = split_localities;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.10;
  cfg.faults.duplicate = 0.05;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = (seed ^ (seed >> 32)) * 0x9e3779b97f4a7c15ull + 1;
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  cfg.reliability.initial_backoff_us = 1'000.0;
  cfg.reliability.backoff_multiplier = 2.0;
  cfg.reliability.max_backoff_us = 50'000.0;
  cfg.reliability.max_retries = 64;
  cfg.coalescing.enabled = true;
  cfg.coalescing.compress = true;
  cfg.coalescing.max_parcels = 8;
  cfg.coalescing.flush_delay_us = 20.0;
  cfg.resilience.enabled = true;
  cfg.resilience.heartbeat_interval_us = 2'000.0;
  // Fence quickly; confirm far above the deliberate outage window so a
  // healed partition evicts nobody (scenario (b)) while a held one
  // eventually does (scenario (a) tolerates either outcome).
  cfg.resilience.suspect_after_us = 100'000.0;
  cfg.resilience.confirm_after_us = 600'000.0;
  return cfg;
}

torture::forall_options partition_opts(char const* stem) {
  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.3;
  opts.perturb.max_sleep_us = 40;
  // Deadline jitter would stall whole heartbeat ticks, and a stalled tick
  // reads as cluster-wide silence; schedule exploration still bites via
  // the sleep/yield perturbations on the wire, probe, and fencing paths.
  opts.perturb.timer_jitter_ns = 0;
  opts.dump_stem = stem;
  return opts;
}

void fail_quiesce(std::unique_ptr<px::dist::distributed_domain> dom,
                  char const* what) {
  dom->detach_invariants();
  auto const leaked = dom->obligations_in_flight();
  (void)dom.release();  // corrupted: destructor would hang
  throw torture::invariant_violation(
      {{"obligation-balance",
        std::to_string(leaked) + " obligation(s) in flight " + what}});
}

bool eventually(int deadline_ms, std::function<bool()> pred) {
  auto const deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// (a) Migration tours across a partition/heal cycle. Objects live on the
// majority side while the cut is up (tours there proceed normally); every
// attempt to migrate one onto the fenced minority must refuse with
// fenced_error. After heal — restarting any locality the majority evicted
// in the meantime — tours span the full cluster again, and the census must
// find exactly one resident copy per GID with its state intact.
TEST(TorturePartition, MigrationCensusAndObligationsAcrossPartitionHeal) {
  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [](std::uint64_t seed) {
        auto dom =
            std::make_unique<px::dist::distributed_domain>(split_cfg(seed));
        constexpr std::size_t objects = 5;
        std::vector<px::agas::gid> gids(objects);

        // Objects start spread over the majority side only.
        dom->run([&](px::dist::locality& loc0) {
          for (std::size_t i = 0; i < objects; ++i)
            gids[i] = loc0.call<&tp_make>(static_cast<std::uint32_t>(i % 3),
                                          i + 1).get();
          return 0;
        });

        // Cut {0,1,2} | {3,4} and wait until the minority has fenced.
        px::net::partition_spec spec;
        spec.side_a = {0, 1, 2};
        spec.side_b = {3, 4};
        dom->fabric().faults().partition_now(spec);
        if (!eventually(10'000,
                        [&] { return dom->is_fenced(3) && dom->is_fenced(4); }))
          throw std::runtime_error("minority never fenced under the cut");

        // Deterministic fenced refusal first, while the fence is freshly
        // observed (well inside the pre-confirm window): a hop onto the
        // minority must refuse with the typed error.
        std::size_t refusals = 0;
        dom->run([&](px::dist::locality& loc0) {
          try {
            (void)px::dist::migrate<split_cell>(loc0, gids[0], 3).get();
          } catch (px::dist::fenced_error const& e) {
            if (e.where() == 3u) ++refusals;
          }
          return 0;
        });
        if (refusals != 1)
          throw std::runtime_error(
              "migration onto the fenced minority was not refused with "
              "fenced_error");

        // Tours while partitioned: majority-internal hops must work.
        dom->run([&](px::dist::locality& loc0) {
          std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 7);
          std::uniform_int_distribution<std::uint32_t> majority(0, 2);
          for (int round = 0; round < 3; ++round) {
            for (std::size_t i = 0; i < objects; ++i) {
              try {
                (void)loc0.call_component<&tp_hop>(gids[i], majority(rng))
                    .get();
              } catch (std::runtime_error const&) {
                // Raced hops may roll back; the census settles it.
              }
            }
          }
          return 0;
        });

        // Heal. If the cut outlived the confirm threshold the majority
        // evicted the minority — re-admit it; either way everyone must end
        // up alive and unfenced.
        dom->fabric().faults().heal_all_partitions();
        for (std::uint32_t l : {3u, 4u})
          if (dom->is_confirmed_dead(l)) dom->restart_locality(l);
        if (!eventually(10'000, [&] {
              return !dom->membership().any_fenced() &&
                     !dom->is_confirmed_dead(3) && !dom->is_confirmed_dead(4);
            }))
          throw std::runtime_error("cluster did not rejoin after heal");

        // Post-heal tours span the whole cluster, minority included.
        dom->run([&](px::dist::locality& loc0) {
          std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 13);
          std::uniform_int_distribution<std::uint32_t> anywhere(
              0, split_localities - 1);
          for (int round = 0; round < 3; ++round) {
            for (std::size_t i = 0; i < objects; ++i) {
              try {
                (void)loc0.call_component<&tp_hop>(gids[i], anywhere(rng))
                    .get();
              } catch (std::runtime_error const&) {
              }
            }
          }
          return 0;
        });
        if (!dom->wait_all_quiescent_for(30s))
          fail_quiesce(std::move(dom), "after partition/heal tours");

        // Census: exactly one resident copy per GID, state intact.
        dom->run([&](px::dist::locality& loc0) {
          for (std::size_t i = 0; i < objects; ++i) {
            int residents = 0;
            for (std::uint32_t l = 0; l < split_localities; ++l)
              residents += loc0.call<&tp_contains>(l, gids[i]).get();
            if (residents != 1)
              throw std::runtime_error(
                  "expected exactly 1 resident copy, found " +
                  std::to_string(residents) + " (gid " + gids[i].to_string() +
                  ")");
            if (loc0.call_component<&tp_read>(gids[i]).get() != i + 1)
              throw std::runtime_error("post-heal read lost object state");
          }
          return 0;
        });
        if (!dom->wait_all_quiescent_for(30s))
          fail_quiesce(std::move(dom), "after census");
      },
      partition_opts("torture-partition-tours"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

// (b) A checkpointed heat solve rides out a sub-confirm-threshold
// partition: the reliability RTOs span the outage, quorum keeps both sides
// alive (zero confirms, zero rollbacks), fenced minority checkpoints are
// skipped, and after heal the answer is bitwise identical to a fault-free
// run of the same topology.
TEST(TorturePartition, HealedPartitionHeatStaysBitwiseIdentical) {
  auto const initial = px::stencil::heat1d_sine_initial(151);
  // Enough steps that the 50–300 ms cut window always lands mid-solve: the
  // cross-cut halo exchanges stall on their RTOs and resume after heal.
  px::stencil::dist_heat_config hc;
  hc.steps = 300;
  hc.checkpoint_interval = 25;

  // Fault-free baseline on an identical topology.
  px::dist::domain_config clean = split_cfg(0);
  clean.faults = {};
  clean.coalescing = {};
  clean.injection_scale = 0.0;
  clean.resilience.enabled = false;
  px::dist::distributed_domain clean_dom(clean);
  auto const baseline = px::stencil::run_distributed_heat1d(clean_dom, initial, hc);
  clean_dom.wait_all_quiescent();
  ASSERT_EQ(baseline.values.size(), initial.size());

  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [&](std::uint64_t seed) {
        auto const confirms0 = builtin().resilience_confirms.load();
        auto dom =
            std::make_unique<px::dist::distributed_domain>(split_cfg(seed));

        // Cut the cluster mid-solve and heal well before the 600 ms
        // confirm threshold: long enough for RTOs and fencing to engage.
        std::thread cutter([&dom] {
          std::this_thread::sleep_for(50ms);
          px::net::partition_spec spec;
          spec.side_a = {0, 1, 2};
          spec.side_b = {3, 4};
          dom->fabric().faults().partition_now(spec);
          std::this_thread::sleep_for(250ms);
          dom->fabric().faults().heal_all_partitions();
        });
        px::stencil::dist_heat_result out;
        try {
          out = px::stencil::run_distributed_heat1d(*dom, initial, hc);
        } catch (...) {
          cutter.join();
          throw;
        }
        cutter.join();

        // Quorum membership recovered the solve without evicting anyone —
        // no confirm, no restart, no rollback-replay round.
        if (builtin().resilience_confirms.load() - confirms0 != 0)
          throw std::runtime_error(
              "a healed sub-threshold partition must not confirm-kill "
              "anyone");
        if (out.recoveries != 0)
          throw std::runtime_error(
              "no locality died, so no rollback-replay should have run");
        if (out.values.size() != baseline.values.size() ||
            !(out.values == baseline.values))
          throw std::runtime_error(
              "partitioned+healed heat1d diverged bitwise from the "
              "fault-free run");
        if (!eventually(10'000,
                        [&] { return !dom->membership().any_fenced(); }))
          throw std::runtime_error("fences did not clear after heal");
        if (!dom->wait_all_quiescent_for(60s))
          fail_quiesce(std::move(dom), "after partition/heal heat solve");
      },
      partition_opts("torture-partition-heat"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
