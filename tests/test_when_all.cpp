// Tests for when_all / when_any / wait_all composition.
#include <gtest/gtest.h>

#include "px/lcos/when_all.hpp"

namespace {

struct WhenAllTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 3;
    return c;
  }()};
};

TEST_F(WhenAllTest, VariadicDeliversAllValues) {
  auto result = px::sync_wait(rt, [] {
    auto a = px::async([] { return 1; });
    auto b = px::async([] { return std::string("two"); });
    auto all = px::when_all(std::move(a), std::move(b));
    auto [fa, fb] = all.get();
    return std::make_pair(fa.get(), fb.get());
  });
  EXPECT_EQ(result.first, 1);
  EXPECT_EQ(result.second, "two");
}

TEST_F(WhenAllTest, VectorFormAllReady) {
  auto sum = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 20; ++i)
      futs.push_back(px::async([i] {
        if (i % 3 == 0)
          px::this_task::sleep_for(std::chrono::milliseconds(5));
        return i;
      }));
    auto ready = px::when_all(std::move(futs)).get();
    int s = 0;
    for (auto& f : ready) {
      EXPECT_TRUE(f.is_ready());
      s += f.get();
    }
    return s;
  });
  EXPECT_EQ(sum, 190);
}

TEST_F(WhenAllTest, EmptyVectorIsImmediatelyReady) {
  auto ok = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    auto all = px::when_all(std::move(futs));
    return all.is_ready() && all.get().empty();
  });
  EXPECT_TRUE(ok);
}

TEST_F(WhenAllTest, ExceptionsSurfacePerFuture) {
  auto counts = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 10; ++i)
      futs.push_back(px::async([i]() -> int {
        if (i % 2 == 0) throw std::runtime_error("even");
        return i;
      }));
    auto ready = px::when_all(std::move(futs)).get();
    int ok = 0, failed = 0;
    for (auto& f : ready) {
      try {
        (void)f.get();
        ++ok;
      } catch (std::runtime_error const&) {
        ++failed;
      }
    }
    return std::make_pair(ok, failed);
  });
  EXPECT_EQ(counts.first, 5);
  EXPECT_EQ(counts.second, 5);
}

TEST_F(WhenAllTest, WhenAnyReturnsFirstIndex) {
  auto idx = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    futs.push_back(px::async([] {
      px::this_task::sleep_for(std::chrono::milliseconds(80));
      return 0;
    }));
    futs.push_back(px::async([] { return 1; }));
    futs.push_back(px::async([] {
      px::this_task::sleep_for(std::chrono::milliseconds(80));
      return 2;
    }));
    auto any = px::when_any(std::move(futs)).get();
    EXPECT_EQ(any.futures.size(), 3u);
    EXPECT_TRUE(any.futures[any.index].is_ready());
    return any.index;
  });
  EXPECT_EQ(idx, 1u);
}

TEST_F(WhenAllTest, WhenAnyRemainingFuturesStayUsable) {
  auto total = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 4; ++i)
      futs.push_back(px::async([i] {
        px::this_task::sleep_for(std::chrono::milliseconds(5 * i));
        return i + 1;
      }));
    auto any = px::when_any(std::move(futs)).get();
    int sum = 0;
    for (auto& f : any.futures) sum += f.get();  // waits for the rest too
    return sum;
  });
  EXPECT_EQ(total, 10);
}

TEST_F(WhenAllTest, WaitAllBlocksUntilAllReady) {
  px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 8; ++i)
      futs.push_back(px::async([i] {
        px::this_task::sleep_for(std::chrono::milliseconds(2 * i));
        return i;
      }));
    px::wait_all(futs);
    for (auto& f : futs) EXPECT_TRUE(f.is_ready());
    return 0;
  });
}

TEST_F(WhenAllTest, WhenAllOfWhenAll) {
  auto v = px::sync_wait(rt, [] {
    auto a = px::when_all(px::async([] { return 1; }),
                          px::async([] { return 2; }));
    auto b = px::async([] { return 3; });
    auto outer = px::when_all(std::move(a), std::move(b));
    auto [fa, fb] = outer.get();
    auto [f1, f2] = fa.get();
    return f1.get() + f2.get() + fb.get();
  });
  EXPECT_EQ(v, 6);
}

}  // namespace
