// Policy conformance sweeps: every scheduling policy (built-in or custom)
// must preserve the runtime's task-conservation invariants — no task loss,
// no duplicate execution, quiesce obligation balance, and steal/park
// liveness — under schedule perturbation. The suite itself lives in
// px/sched/conformance.hpp so downstream policies can reuse it; here it
// runs against all three built-ins under a seed sweep (64 seeds in the
// check.sh --torture lane via PX_TORTURE_SEEDS).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "px/sched/conformance.hpp"
#include "px/torture/forall.hpp"

namespace {

namespace torture = px::torture;

void sweep(std::string const& policy) {
  px::sched::conformance_config cfg;
  cfg.policy_name = policy;
  cfg.workers = 4;
  cfg.tasks = 256;
  cfg.waves = 3;

  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.25;
  opts.perturb.max_sleep_us = 30;
  opts.dump_stem = "torture-policy-" + policy;

  auto const r = torture::forall_seeds(
      torture::seed_count(4),
      [&cfg](std::uint64_t) {
        if (auto failure = px::sched::run_policy_conformance(cfg))
          throw std::runtime_error(*failure);
      },
      opts);
  EXPECT_TRUE(r.passed) << "policy " << policy << ", seed " << r.failing_seed
                        << ": " << r.message;
}

TEST(PolicyConformance, WorkStealing) { sweep("ws"); }
TEST(PolicyConformance, WeightedFair) { sweep("wfq"); }
TEST(PolicyConformance, StrictPriority) { sweep("priority"); }

// The suite must also be able to see a broken policy: under the relaxed
// wake-protocol knob (the reintroduced pre-PR5 lost-wake bug) liveness is
// rescued only by the bounded park, so conformance still passes but the
// stalled-wake detector must light up under heavy cross-thread submission.
// That path is covered by tests/test_torture_mpsc.cpp; here we just pin
// that conformance rejects an obviously absurd configuration.
TEST(PolicyConformance, ZeroWaveRunsPassVacuously) {
  px::sched::conformance_config cfg;
  cfg.waves = 0;
  EXPECT_FALSE(px::sched::run_policy_conformance(cfg).has_value());
}

}  // namespace
