// Tests for the AGAS-backed partitioned vector.
#include <gtest/gtest.h>

#include <numeric>

#include "px/dist/partitioned_vector.hpp"

PX_REGISTER_PARTITIONED_VECTOR(double)
PX_REGISTER_PARTITIONED_VECTOR(long)

namespace {

px::dist::domain_config cfg(std::size_t n) {
  px::dist::domain_config c;
  c.num_localities = n;
  c.locality_cfg.num_workers = 2;
  c.injection_scale = 0.0005;
  return c;
}

TEST(PartitionedVector, CreateSpreadsBlocksOverLocalities) {
  px::dist::distributed_domain dom(cfg(4));
  dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<double>::create(loc0, 103, 1.5);
    EXPECT_EQ(pv.size(), 103u);
    EXPECT_EQ(pv.num_blocks(), 4u);
    for (std::size_t b = 0; b < 4; ++b)
      EXPECT_EQ(pv.block_gid(b).locality(), b);
    pv.destroy(loc0);
    return 0;
  });
}

TEST(PartitionedVector, GetSetAcrossLocalities) {
  px::dist::distributed_domain dom(cfg(3));
  dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<double>::create(loc0, 30, 0.0);
    // Write every 7th element, read all back.
    for (std::size_t i = 0; i < 30; i += 7)
      pv.set(loc0, i, static_cast<double>(i) * 1.5);
    for (std::size_t i = 0; i < 30; ++i) {
      double const expect = i % 7 == 0 ? static_cast<double>(i) * 1.5 : 0.0;
      EXPECT_DOUBLE_EQ(pv.get(loc0, i), expect) << i;
    }
    pv.destroy(loc0);
    return 0;
  });
}

TEST(PartitionedVector, OwnerOfMatchesBlockDecomposition) {
  px::dist::distributed_domain dom(cfg(4));
  dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<long>::create(loc0, 16, 0L);
    // 16 over 4 localities: 4 each.
    EXPECT_EQ(pv.owner_of(0), 0u);
    EXPECT_EQ(pv.owner_of(3), 0u);
    EXPECT_EQ(pv.owner_of(4), 1u);
    EXPECT_EQ(pv.owner_of(15), 3u);
    pv.destroy(loc0);
    return 0;
  });
}

TEST(PartitionedVector, GatherScatterRoundtrip) {
  px::dist::distributed_domain dom(cfg(3));
  dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<long>::create(loc0, 50, 0L);
    std::vector<long> values(50);
    std::iota(values.begin(), values.end(), 100L);
    pv.scatter(loc0, values);
    auto back = pv.gather(loc0);
    EXPECT_EQ(back, values);
    pv.destroy(loc0);
    return 0;
  });
}

TEST(PartitionedVector, DistributedSum) {
  px::dist::distributed_domain dom(cfg(4));
  long total = dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<long>::create(loc0, 1000, 0L);
    std::vector<long> values(1000);
    std::iota(values.begin(), values.end(), 1L);
    pv.scatter(loc0, values);
    long const s = pv.sum(loc0);
    pv.destroy(loc0);
    return s;
  });
  EXPECT_EQ(total, 1000L * 1001 / 2);
}

TEST(PartitionedVector, HandleSerializes) {
  px::dist::distributed_domain dom(cfg(2));
  double v = dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<double>::create(loc0, 10, 0.0);
    pv.set(loc0, 7, 3.25);
    auto bytes = px::serial::to_bytes(pv);
    auto copy =
        px::serial::from_bytes<px::dist::partitioned_vector<double>>(
            std::span<std::byte const>(bytes));
    double const out = copy.get(loc0, 7);
    pv.destroy(loc0);
    return out;
  });
  EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(PartitionedVector, OutOfRangeAccessFails) {
  px::dist::distributed_domain dom(cfg(2));
  bool threw = dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<double>::create(loc0, 10, 0.0);
    bool caught = false;
    try {
      // In-range block index is enforced locally, so poke a stale gid.
      auto g = pv.block_gid(1);
      (void)loc0.call<&px::dist::pv_get<double>>(g.locality(), g,
                                                 std::uint64_t{999})
          .get();
    } catch (std::runtime_error const&) {
      caught = true;
    }
    pv.destroy(loc0);
    return caught;
  });
  EXPECT_TRUE(threw);
}

TEST(PartitionedVector, AccessAfterDestroyFails) {
  px::dist::distributed_domain dom(cfg(2));
  bool threw = dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<double>::create(loc0, 8, 1.0);
    auto g = pv.block_gid(1);
    pv.destroy(loc0);
    try {
      (void)loc0.call<&px::dist::pv_read_block<double>>(g.locality(), g)
          .get();
      return false;
    } catch (std::runtime_error const&) {
      return true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST(PartitionedVector, SingleLocalityDegenerate) {
  px::dist::distributed_domain dom(cfg(1));
  long total = dom.run([](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<long>::create(loc0, 5, 3L);
    long const s = pv.sum(loc0);
    pv.destroy(loc0);
    return s;
  });
  EXPECT_EQ(total, 15);
}

}  // namespace
