// Tests for distributed collectives (broadcast/gather/reduce), block
// splitting, the remote channel component, and when_some/when_each.
#include <gtest/gtest.h>

#include <numeric>

#include "px/dist/collectives.hpp"
#include "px/dist/dist_barrier.hpp"
#include "px/dist/remote_channel.hpp"
#include "px/lcos/when_all.hpp"

namespace {

int locality_id_action(px::dist::locality& here) {
  return static_cast<int>(here.id());
}
long square_action(long x) { return x * x; }

std::atomic<int> pre_barrier_count{0};
std::atomic<int> post_barrier_min_seen{-1};

// SPMD participant: records arrival, hits the barrier twice, checks that
// nobody passed barrier g before all arrived at g.
int barrier_participant(px::dist::locality& here, std::uint64_t rounds) {
  int violations = 0;
  for (std::uint64_t g = 0; g < rounds; ++g) {
    pre_barrier_count.fetch_add(1);
    px::dist::barrier_arrive_and_wait(here, g);
    // After the barrier, every participant of round g has incremented.
    if (pre_barrier_count.load() <
        static_cast<int>((g + 1) * here.domain().size()))
      ++violations;
  }
  return violations;
}

}  // namespace

PX_REGISTER_ACTION(locality_id_action)
PX_REGISTER_ACTION(square_action)
PX_REGISTER_ACTION(barrier_participant)
PX_REGISTER_REMOTE_CHANNEL(double)

namespace {

px::dist::domain_config cfg(std::size_t n) {
  px::dist::domain_config c;
  c.num_localities = n;
  c.locality_cfg.num_workers = 2;
  c.injection_scale = 0.001;
  return c;
}

TEST(Collectives, BroadcastHitsEveryLocality) {
  px::dist::distributed_domain dom(cfg(4));
  auto ids = dom.run([](px::dist::locality& loc0) {
    auto futs = px::dist::broadcast<&locality_id_action>(loc0);
    std::vector<int> got;
    for (auto& f : futs) got.push_back(f.get());
    return got;
  });
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Collectives, GatherReturnsInLocalityOrder) {
  px::dist::distributed_domain dom(cfg(3));
  auto squares = dom.run([](px::dist::locality& loc0) {
    return px::dist::gather<&square_action>(loc0, 3L);
  });
  EXPECT_EQ(squares, (std::vector<long>{9, 9, 9}));
}

TEST(Collectives, ReduceFoldsResults) {
  px::dist::distributed_domain dom(cfg(4));
  long sum = dom.run([](px::dist::locality& loc0) {
    // Each locality returns its id; sum = 0+1+2+3.
    auto ids = px::dist::gather<&locality_id_action>(loc0);
    (void)ids;
    return px::dist::reduce<&locality_id_action>(loc0, 0L, std::plus<>{});
  });
  EXPECT_EQ(sum, 6);
}

TEST(Collectives, SplitBlocksCoversEverythingOnce) {
  std::vector<int> data(103);
  std::iota(data.begin(), data.end(), 0);
  for (std::size_t parts : {1u, 2u, 5u, 103u}) {
    auto blocks = px::dist::split_blocks(data, parts);
    ASSERT_EQ(blocks.size(), parts);
    std::vector<int> flat;
    std::size_t max_size = 0, min_size = data.size();
    for (auto const& b : blocks) {
      flat.insert(flat.end(), b.begin(), b.end());
      max_size = std::max(max_size, b.size());
      min_size = std::min(min_size, b.size());
    }
    EXPECT_EQ(flat, data) << parts;
    EXPECT_LE(max_size - min_size, 1u) << parts;
  }
}

TEST(RemoteChannel, CrossLocalitySendReceive) {
  px::dist::distributed_domain dom(cfg(3));
  double received = dom.run([](px::dist::locality& loc0) {
    auto ch = px::dist::remote_channel<double>::create(loc0);
    // Locality 2 sends into loc0's channel through a parcel.
    auto& remote = loc0.domain().at(2);
    px::sync_wait(remote.rt(), [&] {
      ch.send(remote, 6.25);
      return 0;
    });
    return ch.receive(loc0).get();
  });
  EXPECT_DOUBLE_EQ(received, 6.25);
}

TEST(RemoteChannel, LocalSendSkipsFabric) {
  px::dist::distributed_domain dom(cfg(2));
  auto const msgs0 = dom.fabric().counters().messages.load();
  double v = dom.run([](px::dist::locality& loc0) {
    auto ch = px::dist::remote_channel<double>::create(loc0);
    ch.send(loc0, 1.5);
    double out = ch.receive(loc0).get();
    ch.close(loc0);
    return out;
  });
  dom.wait_all_quiescent();
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_EQ(dom.fabric().counters().messages.load(), msgs0);
}

TEST(RemoteChannel, HandleSurvivesSerialization) {
  px::dist::distributed_domain dom(cfg(2));
  double v = dom.run([](px::dist::locality& loc0) {
    auto ch = px::dist::remote_channel<double>::create(loc0);
    auto bytes = px::serial::to_bytes(ch);
    auto copy = px::serial::from_bytes<px::dist::remote_channel<double>>(
        std::span<std::byte const>(bytes));
    copy.send(loc0, 9.5);
    return ch.receive(loc0).get();
  });
  EXPECT_DOUBLE_EQ(v, 9.5);
}

TEST(DistBarrier, SynchronizesAllLocalities) {
  pre_barrier_count.store(0);
  px::dist::distributed_domain dom(cfg(4));
  int total_violations = dom.run([](px::dist::locality& loc0) {
    auto futs =
        px::dist::broadcast<&barrier_participant>(loc0, std::uint64_t{5});
    int v = 0;
    for (auto& f : futs) v += f.get();
    return v;
  });
  EXPECT_EQ(total_violations, 0);
  EXPECT_EQ(pre_barrier_count.load(), 20);
}

TEST(DistBarrier, SingleLocalityIsTrivial) {
  pre_barrier_count.store(0);
  px::dist::distributed_domain dom(cfg(1));
  int v = dom.run([](px::dist::locality& loc0) {
    return barrier_participant(loc0, 3);
  });
  EXPECT_EQ(v, 0);
}

TEST(DistBarrier, ReusableAcrossManyGenerations) {
  pre_barrier_count.store(0);
  px::dist::distributed_domain dom(cfg(3));
  int v = dom.run([](px::dist::locality& loc0) {
    auto futs =
        px::dist::broadcast<&barrier_participant>(loc0, std::uint64_t{25});
    int total = 0;
    for (auto& f : futs) total += f.get();
    return total;
  });
  EXPECT_EQ(v, 0);
}

// ---- when_some / when_each (new future combinators) ----------------------

struct CombinatorTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 3;
    return c;
  }()};
};

TEST_F(CombinatorTest, WhenSomeFiresAtK) {
  auto result = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 5; ++i)
      futs.push_back(px::async([i] {
        px::this_task::sleep_for(std::chrono::milliseconds(
            i < 2 ? 1 : 100));
        return i;
      }));
    auto some = px::when_some(2, std::move(futs)).get();
    return some.indices.size();
  });
  EXPECT_EQ(result, 2u);
}

TEST_F(CombinatorTest, WhenSomeZeroIsImmediate) {
  auto ready = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    futs.push_back(px::async([] {
      px::this_task::sleep_for(std::chrono::milliseconds(30));
      return 1;
    }));
    auto f = px::when_some(0, std::move(futs));
    return f.is_ready();
  });
  EXPECT_TRUE(ready);
}

TEST_F(CombinatorTest, WhenSomeRemainingFuturesUsable) {
  auto total = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 4; ++i)
      futs.push_back(px::async([i] { return i + 1; }));
    auto some = px::when_some(2, std::move(futs)).get();
    int sum = 0;
    for (auto& f : some.futures) sum += f.get();
    return sum;
  });
  EXPECT_EQ(total, 10);
}

TEST_F(CombinatorTest, WhenEachSeesEveryCompletion) {
  auto result = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    for (int i = 0; i < 8; ++i)
      futs.push_back(px::async([i] { return i; }));
    std::atomic<int> sum{0};
    std::atomic<int> calls{0};
    px::when_each(
        [&](std::size_t, px::future<int> f) {
          sum.fetch_add(f.get());
          calls.fetch_add(1);
        },
        std::move(futs))
        .get();
    return std::make_pair(sum.load(), calls.load());
  });
  EXPECT_EQ(result.first, 28);
  EXPECT_EQ(result.second, 8);
}

TEST_F(CombinatorTest, WhenEachEmptyIsImmediate) {
  bool ready = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    auto f = px::when_each([](std::size_t, px::future<int>) {},
                           std::move(futs));
    return f.is_ready();
  });
  EXPECT_TRUE(ready);
}

}  // namespace
