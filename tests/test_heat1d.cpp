// Tests for the shared-memory 1D heat solver: agreement with the serial
// reference and the analytic sine-mode decay, partition-count sweeps,
// stability checks.
#include <gtest/gtest.h>

#include "px/px.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/reference.hpp"

namespace {

using namespace px::stencil;

px::scheduler_config cfg3() {
  px::scheduler_config c;
  c.num_workers = 3;
  return c;
}

TEST(Heat1dConfig, DefaultTimeStepIsStable) {
  heat1d_config cfg;
  EXPECT_DOUBLE_EQ(cfg.k(), 0.25);
  cfg.alpha = 2.0;
  EXPECT_DOUBLE_EQ(cfg.k(), 0.25);  // dt auto-adjusts to stay stable
  cfg.dt = 0.1;
  cfg.dx = 1.0;
  EXPECT_DOUBLE_EQ(cfg.k(), 0.2);
}

TEST(Heat1d, MatchesSerialReference) {
  px::runtime rt(cfg3());
  auto initial = heat1d_sine_initial(1000);
  heat1d_config cfg;
  cfg.steps = 50;
  auto result = px::sync_wait(rt, [&] {
    return run_heat1d(px::execution::par, initial, cfg);
  });
  auto ref = reference_heat1d(initial, 50, cfg.k());
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13);
}

TEST(Heat1d, MatchesAnalyticSineDecay) {
  px::runtime rt(cfg3());
  constexpr std::size_t nx = 2001;
  auto initial = heat1d_sine_initial(nx);
  heat1d_config cfg;
  cfg.steps = 200;
  auto result = px::sync_wait(rt, [&] {
    return run_heat1d(px::execution::par, initial, cfg);
  });
  auto analytic = analytic_heat1d_sine(nx, cfg.steps, cfg.k());
  EXPECT_LT(max_abs_diff(result.values, analytic), 1e-10);
}

class Heat1dPartitions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Heat1dPartitions, PartitionCountDoesNotChangeTheAnswer) {
  px::runtime rt(cfg3());
  auto initial = heat1d_sine_initial(503);  // prime-ish: ragged partitions
  heat1d_config cfg;
  cfg.steps = 30;
  cfg.partitions = GetParam();
  auto result = px::sync_wait(rt, [&] {
    return run_heat1d(px::execution::par, initial, cfg);
  });
  auto ref = reference_heat1d(initial, 30, cfg.k());
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13)
      << "partitions=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Partitions, Heat1dPartitions,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 251, 503));

TEST(Heat1d, DirichletBoundariesAreFixed) {
  px::runtime rt(cfg3());
  std::vector<double> initial(100, 0.0);
  initial.front() = 5.0;
  initial.back() = -3.0;
  heat1d_config cfg;
  cfg.steps = 40;
  auto result = px::sync_wait(rt, [&] {
    return run_heat1d(px::execution::par, initial, cfg);
  });
  EXPECT_DOUBLE_EQ(result.values.front(), 5.0);
  EXPECT_DOUBLE_EQ(result.values.back(), -3.0);
  // Heat flows inward from the hot boundary.
  EXPECT_GT(result.values[1], 0.0);
  EXPECT_LT(result.values[98], 0.0);
}

TEST(Heat1d, EnergyDecaysMonotonically) {
  // The discrete maximum principle: max |u| never grows for k <= 1/2.
  auto u = heat1d_sine_initial(301);
  double prev_max = 1.0;
  for (int rounds = 0; rounds < 5; ++rounds) {
    u = reference_heat1d(u, 20, 0.25);
    double mx = 0;
    for (double v : u) mx = std::max(mx, std::abs(v));
    EXPECT_LE(mx, prev_max + 1e-15);
    prev_max = mx;
  }
  EXPECT_LT(prev_max, 1.0);
}

TEST(Heat1d, ReportsThroughput) {
  px::runtime rt(cfg3());
  auto initial = heat1d_sine_initial(10000);
  heat1d_config cfg;
  cfg.steps = 20;
  auto result = px::sync_wait(rt, [&] {
    return run_heat1d(px::execution::par, initial, cfg);
  });
  EXPECT_GT(result.points_per_second, 0.0);
  EXPECT_EQ(result.values.size(), 10000u);
}

TEST(Heat1d, SequencedPolicyMatchesParallel) {
  px::runtime rt(cfg3());
  auto initial = heat1d_sine_initial(777);
  heat1d_config cfg;
  cfg.steps = 25;
  auto par_result = px::sync_wait(rt, [&] {
    return run_heat1d(px::execution::par, initial, cfg);
  });
  auto seq_result = run_heat1d(px::execution::seq, initial, cfg);
  EXPECT_LT(max_abs_diff(par_result.values, seq_result.values), 1e-15);
}

}  // namespace
