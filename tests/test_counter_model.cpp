// Tests checking the analytic counter model against the paper's hardware
// counter tables (III-VI). Tolerances are relative; the model is a fit, not
// a simulator, but it must land within a tight band of every table entry.
#include <gtest/gtest.h>

#include "px/arch/counter_model.hpp"

namespace {

using namespace px::arch;

kernel_spec spec(std::size_t bytes, bool explicit_vec) {
  kernel_spec k;  // defaults are the paper's counter grid: 8192x16384, 100
  k.scalar_bytes = bytes;
  k.explicit_vector = explicit_vec;
  return k;
}

void expect_close(double got, double paper, double rel_tol,
                  char const* what) {
  EXPECT_NEAR(got / paper, 1.0, rel_tol) << what << ": got " << got
                                         << " paper " << paper;
}

// ---- Table III: Intel Xeon E5-2660 v3 ------------------------------------

TEST(CounterModel, TableIIIXeonInstructions) {
  machine m = xeon_e5_2660v3();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).instructions,
               3.153e10, 0.06, "float");
  expect_close(estimate_jacobi_counters(m, spec(4, true)).instructions,
               1.783e10, 0.06, "vector float");
  expect_close(estimate_jacobi_counters(m, spec(8, false)).instructions,
               6.01e10, 0.06, "double");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).instructions,
               3.507e10, 0.06, "vector double");
}

TEST(CounterModel, TableIIIXeonCacheMisses) {
  machine m = xeon_e5_2660v3();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).cache_misses,
               2.121e8, 0.10, "float");
  expect_close(estimate_jacobi_counters(m, spec(4, true)).cache_misses,
               3.706e8, 0.10, "vector float");
  expect_close(estimate_jacobi_counters(m, spec(8, false)).cache_misses,
               4.74e8, 0.10, "double");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).cache_misses,
               8.751e8, 0.10, "vector double");
}

TEST(CounterModel, XeonHasNoStallCounters) {
  // §VII-B: "Intel Xeon E5 2660v3 doesn't support these counters".
  machine m = xeon_e5_2660v3();
  auto est = estimate_jacobi_counters(m, spec(4, false));
  EXPECT_FALSE(est.frontend_stalls.has_value());
  EXPECT_FALSE(est.backend_stalls.has_value());
}

// ---- Table IV: HiSilicon Hi1616 -------------------------------------------

TEST(CounterModel, TableIVKunpengInstructions) {
  machine m = kunpeng916();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).instructions,
               4.3e10, 0.06, "float");
  expect_close(estimate_jacobi_counters(m, spec(4, true)).instructions,
               4.144e10, 0.06, "vector float");
  expect_close(estimate_jacobi_counters(m, spec(8, false)).instructions,
               8.321e10, 0.06, "double");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).instructions,
               8.236e10, 0.06, "vector double");
}

TEST(CounterModel, TableIVKunpengCacheMisses) {
  machine m = kunpeng916();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).cache_misses,
               3.148e9, 0.10, "float");
  expect_close(estimate_jacobi_counters(m, spec(4, true)).cache_misses,
               2.512e9, 0.10, "vector float");
  expect_close(estimate_jacobi_counters(m, spec(8, false)).cache_misses,
               5.639e9, 0.10, "double");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).cache_misses,
               4.953e9, 0.10, "vector double");
}

// ---- Table V: Fujitsu A64FX -------------------------------------------------

TEST(CounterModel, TableVA64FXInstructions) {
  machine m = a64fx();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).instructions,
               1.284e10, 0.08, "float");
  expect_close(estimate_jacobi_counters(m, spec(4, true)).instructions,
               1.496e10, 0.08, "vector float");
  expect_close(estimate_jacobi_counters(m, spec(8, false)).instructions,
               2.299e10, 0.08, "double");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).instructions,
               2.956e10, 0.08, "vector double");
}

TEST(CounterModel, TableVA64FXStalls) {
  machine m = a64fx();
  expect_close(*estimate_jacobi_counters(m, spec(4, false)).frontend_stalls,
               3.801e8, 0.05, "fe float");
  expect_close(*estimate_jacobi_counters(m, spec(4, true)).frontend_stalls,
               2.918e8, 0.05, "fe vector float");
  expect_close(*estimate_jacobi_counters(m, spec(8, false)).frontend_stalls,
               3.86e8, 0.05, "fe double");
  expect_close(*estimate_jacobi_counters(m, spec(8, true)).frontend_stalls,
               3.56e8, 0.05, "fe vector double");
  expect_close(*estimate_jacobi_counters(m, spec(4, false)).backend_stalls,
               9.43e9, 0.05, "be float");
  expect_close(*estimate_jacobi_counters(m, spec(4, true)).backend_stalls,
               8.003e9, 0.05, "be vector float");
  expect_close(*estimate_jacobi_counters(m, spec(8, false)).backend_stalls,
               1.871e10, 0.05, "be double");
  expect_close(*estimate_jacobi_counters(m, spec(8, true)).backend_stalls,
               1.443e10, 0.05, "be vector double");
}

// ---- Table VI: Marvell ThunderX2 --------------------------------------------

TEST(CounterModel, TableVITX2Instructions) {
  machine m = thunderx2();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).instructions,
               4.039e10, 0.06, "float");
  expect_close(estimate_jacobi_counters(m, spec(4, true)).instructions,
               4.394e10, 0.06, "vector float");
  expect_close(estimate_jacobi_counters(m, spec(8, false)).instructions,
               8.065e10, 0.06, "double");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).instructions,
               8.756e10, 0.06, "vector double");
}

TEST(CounterModel, TableVITX2L2MissesAndStalls) {
  machine m = thunderx2();
  expect_close(estimate_jacobi_counters(m, spec(4, false)).cache_misses,
               1.811e9, 0.10, "L2 float");
  expect_close(estimate_jacobi_counters(m, spec(8, true)).cache_misses,
               6.055e9, 0.10, "L2 vector double");
  expect_close(*estimate_jacobi_counters(m, spec(4, false)).backend_stalls,
               1.522e10, 0.05, "be float");
  expect_close(*estimate_jacobi_counters(m, spec(4, true)).backend_stalls,
               6.437e9, 0.05, "be vector float");
  expect_close(*estimate_jacobi_counters(m, spec(8, false)).backend_stalls,
               3.298e10, 0.05, "be double");
  expect_close(*estimate_jacobi_counters(m, spec(8, true)).backend_stalls,
               2.826e10, 0.05, "be vector double");
}

// ---- qualitative properties from §VII-B ------------------------------------

TEST(CounterModel, XeonAutoVecLeavesTwoFoldInstructionGap) {
  // "We observed a 2x difference in instruction count between scalar and
  // vector types, i.e., GCC is not able to auto vectorize the code very
  // well."
  machine m = xeon_e5_2660v3();
  double const ratio =
      estimate_jacobi_counters(m, spec(4, false)).instructions /
      estimate_jacobi_counters(m, spec(4, true)).instructions;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.1);
}

TEST(CounterModel, KunpengAutoVecIsNearlyAsGood) {
  // "Explicit vectorization resulted in a mere 5% improvement in
  // instruction count."
  machine m = kunpeng916();
  double const ratio =
      estimate_jacobi_counters(m, spec(4, false)).instructions /
      estimate_jacobi_counters(m, spec(4, true)).instructions;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.1);
}

TEST(CounterModel, TX2AndA64FXAutoVecBeatsExplicitOnCount) {
  // Tables V/VI: GCC emits *fewer* instructions than the pack kernels.
  for (auto const& m : {thunderx2(), a64fx()}) {
    EXPECT_LT(estimate_jacobi_counters(m, spec(4, false)).instructions,
              estimate_jacobi_counters(m, spec(4, true)).instructions)
        << m.short_name;
  }
}

TEST(CounterModel, ExplicitVectorizationCutsTX2BackendStalls) {
  // "The number of backend stalls ... for explicitly vectorized code ...
  // reduced by about 40%" / Table VI shows ~58% for floats.
  machine m = thunderx2();
  double const auto_stalls =
      *estimate_jacobi_counters(m, spec(4, false)).backend_stalls;
  double const explicit_stalls =
      *estimate_jacobi_counters(m, spec(4, true)).backend_stalls;
  EXPECT_LT(explicit_stalls, 0.65 * auto_stalls);
}

TEST(CounterModel, ScalesLinearlyWithGridAndIterations) {
  machine m = a64fx();
  auto small = estimate_jacobi_counters(m, spec(4, false));
  kernel_spec big = spec(4, false);
  big.iterations = 200;
  auto doubled = estimate_jacobi_counters(m, big);
  EXPECT_NEAR(doubled.instructions / small.instructions, 2.0, 1e-9);
  EXPECT_NEAR(doubled.cache_misses / small.cache_misses, 2.0, 1e-9);
}

}  // namespace
