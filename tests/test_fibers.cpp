// Tests for px/fibers: guarded stacks, the stack pool, and fiber
// suspend/resume semantics.
#include <gtest/gtest.h>

#include <vector>

#include "px/fibers/fiber.hpp"
#include "px/fibers/stack.hpp"

namespace {

using px::fibers::allocate_stack;
using px::fibers::fiber;
using px::fibers::release_stack;
using px::fibers::stack;
using px::fibers::stack_pool;

TEST(Stack, AllocatesUsableMemory) {
  stack s = allocate_stack(64 * 1024);
  ASSERT_TRUE(s.valid());
  EXPECT_GE(s.usable_size, 64u * 1024u);
  // Touch the whole usable region.
  auto* p = static_cast<volatile char*>(s.limit);
  for (std::size_t i = 0; i < s.usable_size; i += 4096) p[i] = 1;
  release_stack(s);
}

TEST(Stack, SizeRoundedToPages) {
  stack s = allocate_stack(1000);
  EXPECT_EQ(s.usable_size % 4096, 0u);
  release_stack(s);
}

TEST(StackPool, RecyclesStacks) {
  stack_pool pool(64 * 1024);
  stack a = pool.acquire();
  void* const base = a.base;
  pool.recycle(a);
  EXPECT_EQ(pool.cached(), 1u);
  stack b = pool.acquire();
  EXPECT_EQ(b.base, base);  // LIFO reuse
  pool.recycle(b);
}

TEST(StackPool, CapsCachedStacks) {
  stack_pool pool(16 * 1024, 2);
  stack s1 = pool.acquire(), s2 = pool.acquire(), s3 = pool.acquire();
  pool.recycle(s1);
  pool.recycle(s2);
  pool.recycle(s3);  // exceeds the cap; released to the OS
  EXPECT_EQ(pool.cached(), 2u);
}

TEST(Fiber, RunsToCompletion) {
  stack s = allocate_stack(64 * 1024);
  int x = 0;
  fiber f(s, [&x] { x = 42; });
  EXPECT_EQ(f.current_state(), fiber::state::ready);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
  release_stack(s);
}

TEST(Fiber, SuspendAndResume) {
  stack s = allocate_stack(64 * 1024);
  std::vector<int> order;
  fiber* self = nullptr;
  fiber f(s, [&] {
    order.push_back(1);
    self->suspend_to_owner();
    order.push_back(3);
    self->suspend_to_owner();
    order.push_back(5);
  });
  self = &f;
  f.resume();
  order.push_back(2);
  EXPECT_EQ(f.current_state(), fiber::state::suspended);
  f.resume();
  order.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  release_stack(s);
}

TEST(Fiber, CurrentTracksExecutingFiber) {
  stack s = allocate_stack(64 * 1024);
  fiber* observed = reinterpret_cast<fiber*>(1);
  fiber f(s, [&] { observed = fiber::current(); });
  EXPECT_EQ(fiber::current(), nullptr);
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(fiber::current(), nullptr);
  release_stack(s);
}

TEST(Fiber, ManySequentialFibersReuseOneStack) {
  stack_pool pool(64 * 1024);
  int sum = 0;
  for (int i = 0; i < 1000; ++i) {
    stack s = pool.acquire();
    fiber f(s, [&sum, i] { sum += i; });
    f.resume();
    EXPECT_TRUE(f.finished());
    pool.recycle(s);
  }
  EXPECT_EQ(sum, 999 * 1000 / 2);
  EXPECT_LE(pool.total_allocated(), 2u);
}

TEST(Fiber, DeepStackUsageWithinLimit) {
  stack s = allocate_stack(256 * 1024);
  // Use ~100 KiB of stack inside the fiber; must not fault.
  int result = 0;
  fiber f(s, [&result] {
    volatile char buffer[100 * 1024];
    buffer[0] = 1;
    buffer[sizeof(buffer) - 1] = 2;
    result = buffer[0] + buffer[sizeof(buffer) - 1];
  });
  f.resume();
  EXPECT_EQ(result, 3);
  release_stack(s);
}

TEST(Fiber, InterleavedFibers) {
  stack s1 = allocate_stack(64 * 1024), s2 = allocate_stack(64 * 1024);
  std::vector<int> order;
  fiber *p1 = nullptr, *p2 = nullptr;
  fiber f1(s1, [&] {
    order.push_back(1);
    p1->suspend_to_owner();
    order.push_back(4);
  });
  fiber f2(s2, [&] {
    order.push_back(2);
    p2->suspend_to_owner();
    order.push_back(3);
  });
  p1 = &f1;
  p2 = &f2;
  f1.resume();
  f2.resume();
  f2.resume();
  f1.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  release_stack(s1);
  release_stack(s2);
}

}  // namespace
