// Partition-tolerance tests: fault-plane partition schedules (symmetric,
// one-way/gray, flapping, step-triggered activation and heal), strict env
// parsing of the partition and membership knobs, quorum membership (the
// majority side confirms a partitioned minority dead while the minority
// fences itself instead of confirm-killing the majority), typed
// fenced_error refusals from every fencing gate (migration, rebalancer,
// serve admission, heat checkpoints), the gray-failure regression (a
// one-way link must not confirm-kill a healthy node once indirect probes
// run — and demonstrably does when they are disabled), the
// revive-during-suspect race, and heal/rejoin accounting. The
// `ctest -L partition` lane runs this with the partition torture sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "px/agas/rebalance.hpp"
#include "px/counters/counters.hpp"
#include "px/dist/membership.hpp"
#include "px/dist/migration.hpp"
#include "px/net/fault_plane.hpp"
#include "px/px.hpp"
#include "px/serve/serve.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"

namespace {

struct part_cell {
  std::uint64_t value = 0;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& value;
  }
};

px::agas::gid pt_make(px::dist::locality& here, std::uint64_t value) {
  auto cell = std::make_shared<part_cell>();
  cell->value = value;
  return here.agas().bind(std::move(cell));
}

std::uint64_t pt_read(px::dist::locality& here, px::agas::gid g) {
  auto cell = here.agas().resolve<part_cell>(g);
  if (cell == nullptr) throw std::runtime_error("part_cell not resident");
  return cell->value;
}

}  // namespace

PX_REGISTER_ACTION(pt_make)
PX_REGISTER_ACTION(pt_read)
PX_REGISTER_MIGRATABLE(part_cell)

namespace {

using px::counters::builtin;
using namespace std::chrono_literals;

bool eventually(int deadline_ms, std::function<bool()> pred) {
  auto const deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ---- partition schedules (fault_plane unit) ------------------------------

TEST(PartitionSchedule, SymmetricBlackholesBothDirectionsAcrossTheCut) {
  px::net::fault_plane plane;  // no link faults: partitions work alone
  px::net::partition_spec spec;
  spec.side_a = {0, 1};
  spec.side_b = {2, 3};
  auto const id = plane.partition_now(spec);
  EXPECT_EQ(plane.active_partitions(), 1u);

  // Cross-cut frames vanish in both directions; same-side frames flow.
  auto const cut_fwd = plane.sample(0, 2);
  EXPECT_TRUE(cut_fwd.drop);
  EXPECT_TRUE(cut_fwd.blackholed);
  auto const cut_rev = plane.sample(3, 1);
  EXPECT_TRUE(cut_rev.drop);
  EXPECT_TRUE(cut_rev.blackholed);
  EXPECT_FALSE(plane.sample(0, 1).drop);
  EXPECT_FALSE(plane.sample(2, 3).drop);
  EXPECT_TRUE(plane.partitioned(0, 2));
  EXPECT_TRUE(plane.partitioned(2, 0));
  EXPECT_FALSE(plane.partitioned(0, 1));
  EXPECT_EQ(plane.stats().partition_drops, 2u);
  EXPECT_EQ(plane.stats().partitions_triggered, 1u);

  plane.heal_partition(id);
  EXPECT_EQ(plane.active_partitions(), 0u);
  EXPECT_FALSE(plane.sample(0, 2).drop);
  EXPECT_FALSE(plane.partitioned(0, 2));
  plane.heal_partition(id);  // unknown/healed id: no-op
}

TEST(PartitionSchedule, OneWayLossIsDirectional) {
  // The gray-failure shape: side A's frames toward side B are lost, the
  // reverse direction still flows.
  px::net::fault_plane plane;
  px::net::partition_spec spec;
  spec.side_a = {0};
  spec.side_b = {1};
  spec.symmetric = false;
  plane.partition_now(spec);

  EXPECT_TRUE(plane.sample(0, 1).drop);
  EXPECT_FALSE(plane.sample(1, 0).drop);
  EXPECT_TRUE(plane.partitioned(0, 1));
  EXPECT_FALSE(plane.partitioned(1, 0));
}

TEST(PartitionSchedule, FlappingLinkAlternatesWithStepPhase) {
  px::net::fault_plane plane;
  px::net::partition_spec spec;
  spec.side_a = {0};
  spec.side_b = {1};
  spec.flap_period_steps = 10;
  plane.partition_now(spec);  // activated at step 0

  plane.advance_step(5);  // phase 0: blocked
  EXPECT_TRUE(plane.sample(0, 1).drop);
  plane.advance_step(15);  // phase 1: open
  EXPECT_FALSE(plane.sample(0, 1).drop);
  plane.advance_step(25);  // phase 2: blocked again
  EXPECT_TRUE(plane.sample(0, 1).drop);
  // A flapping partition stays installed through its open phases: only a
  // heal removes it.
  EXPECT_EQ(plane.active_partitions(), 1u);
}

TEST(PartitionSchedule, StepTriggeredActivationAndHeal) {
  px::net::fault_plane plane;
  px::net::partition_spec spec;
  spec.side_a = {0};
  spec.side_b = {1, 2};
  auto const id = plane.partition_at_step(spec, 10);
  plane.heal_partition_at_step(id, 20);

  plane.advance_step(9);
  EXPECT_FALSE(plane.sample(0, 1).drop);
  EXPECT_EQ(plane.active_partitions(), 0u);
  EXPECT_EQ(plane.stats().partitions_triggered, 0u);

  plane.advance_step(10);
  EXPECT_TRUE(plane.sample(0, 2).drop);
  EXPECT_EQ(plane.active_partitions(), 1u);
  EXPECT_EQ(plane.stats().partitions_triggered, 1u);

  plane.advance_step(20);
  EXPECT_FALSE(plane.sample(0, 1).drop);
  EXPECT_EQ(plane.active_partitions(), 0u);
}

TEST(PartitionSchedule, ComposesWithLinkFaultSampling) {
  // A partitioned frame never reaches the per-link lottery; frames on
  // surviving links still sample their configured faults.
  px::net::fault_config cfg;
  cfg.drop = 1.0;  // every non-partitioned frame drops via the lottery
  px::net::fault_plane plane(cfg);
  px::net::partition_spec spec;
  spec.side_a = {0};
  spec.side_b = {1};
  plane.partition_now(spec);

  auto const cut = plane.sample(0, 1);
  EXPECT_TRUE(cut.drop);
  EXPECT_TRUE(cut.blackholed);  // partition, not lottery
  auto const open = plane.sample(0, 2);
  EXPECT_TRUE(open.drop);
  EXPECT_FALSE(open.blackholed);  // lottery, not partition
}

// ---- env knobs (strict parsing) ------------------------------------------

TEST(PartitionEnv, CutScheduleAppliesAndParsesStrictly) {
  ::setenv("PX_PARTITION_CUT", "2", 1);
  ::setenv("PX_PARTITION_ONEWAY", "on", 1);
  {
    px::net::fault_plane plane;
    plane.apply_env_partition(4);
    EXPECT_EQ(plane.active_partitions(), 1u);
    EXPECT_TRUE(plane.partitioned(0, 2));  // low side outbound lost
    EXPECT_TRUE(plane.partitioned(1, 3));
    EXPECT_FALSE(plane.partitioned(2, 0));  // one-way: inbound flows
    EXPECT_FALSE(plane.partitioned(0, 1));
  }

  // Trailing garbage is rejected outright — no partition installed.
  ::setenv("PX_PARTITION_CUT", "2x", 1);
  {
    px::net::fault_plane plane;
    plane.apply_env_partition(4);
    EXPECT_EQ(plane.active_partitions(), 0u);
  }

  // A cut outside (0, n) cannot produce two non-empty sides: ignored.
  ::setenv("PX_PARTITION_CUT", "4", 1);
  {
    px::net::fault_plane plane;
    plane.apply_env_partition(4);
    EXPECT_EQ(plane.active_partitions(), 0u);
  }

  // Scheduled activation and heal ride the step triggers.
  ::setenv("PX_PARTITION_CUT", "1", 1);
  ::setenv("PX_PARTITION_ONEWAY", "off", 1);
  ::setenv("PX_PARTITION_AT_STEP", "5", 1);
  ::setenv("PX_PARTITION_HEAL_AT_STEP", "9", 1);
  {
    px::net::fault_plane plane;
    plane.apply_env_partition(3);
    EXPECT_FALSE(plane.partitioned(0, 1));
    plane.advance_step(5);
    EXPECT_TRUE(plane.partitioned(0, 1));
    EXPECT_TRUE(plane.partitioned(1, 0));  // symmetric again
    plane.advance_step(9);
    EXPECT_FALSE(plane.partitioned(0, 1));
  }

  ::unsetenv("PX_PARTITION_CUT");
  ::unsetenv("PX_PARTITION_ONEWAY");
  ::unsetenv("PX_PARTITION_AT_STEP");
  ::unsetenv("PX_PARTITION_HEAL_AT_STEP");
}

TEST(MembershipEnv, QuorumAndProbeKnobsParseStrictly) {
  px::dist::membership_config base;
  base.quorum = true;
  base.indirect_probes = 2;

  ::setenv("PX_MEMBERSHIP_QUORUM", "off", 1);
  EXPECT_FALSE(px::dist::membership_config::from_env(base).quorum);
  ::setenv("PX_MEMBERSHIP_QUORUM", "on", 1);
  EXPECT_TRUE(px::dist::membership_config::from_env(base).quorum);
  // env_token is exact and case-sensitive: near-misses are ignored.
  for (char const* bad : {"Off", "OFF", "0", "false", " off", "off "}) {
    ::setenv("PX_MEMBERSHIP_QUORUM", bad, 1);
    EXPECT_TRUE(px::dist::membership_config::from_env(base).quorum)
        << "'" << bad << "' must not parse as off";
  }

  ::setenv("PX_MEMBERSHIP_PROBES", "3", 1);
  EXPECT_EQ(px::dist::membership_config::from_env(base).indirect_probes, 3u);
  ::setenv("PX_MEMBERSHIP_PROBES", "0", 1);
  EXPECT_EQ(px::dist::membership_config::from_env(base).indirect_probes, 0u);
  // Trailing garbage is rejected, the base value stands.
  for (char const* bad : {"3x", "3 ", "k3", ""}) {
    ::setenv("PX_MEMBERSHIP_PROBES", bad, 1);
    EXPECT_EQ(px::dist::membership_config::from_env(base).indirect_probes, 2u)
        << "'" << bad << "' must not parse as a probe count";
  }

  ::unsetenv("PX_MEMBERSHIP_QUORUM");
  ::unsetenv("PX_MEMBERSHIP_PROBES");
}

// ---- quorum membership over the live cluster -----------------------------

px::dist::domain_config quorum_cfg(std::size_t n) {
  px::dist::domain_config cfg;
  cfg.num_localities = n;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.resilience.enabled = true;
  // Thresholds are wall-clock: fence quickly (suspect), but keep confirm
  // far above scheduling/sanitizer jitter so only real silence crosses it.
  cfg.resilience.heartbeat_interval_us = 2'000.0;
  cfg.resilience.suspect_after_us = 60'000.0;
  cfg.resilience.confirm_after_us = 600'000.0;
  return cfg;
}

TEST(Quorum, MinorityFencesWhileMajorityConfirms) {
  auto const views0 = builtin().membership_views.load();
  px::dist::distributed_domain dom(quorum_cfg(5));
  ASSERT_TRUE(dom.membership().config().quorum);

  // Symmetric split {0,1,2} | {3,4}: both sides see the other silent, but
  // only the majority side keeps quorum.
  px::net::partition_spec spec;
  spec.side_a = {0, 1, 2};
  spec.side_b = {3, 4};
  dom.fabric().faults().partition_now(spec);

  // Before anyone is confirmed, the minority must fence itself.
  EXPECT_TRUE(eventually(5'000, [&] {
    return dom.is_fenced(3) && dom.is_fenced(4);
  }));
  EXPECT_FALSE(dom.is_fenced(0));
  EXPECT_FALSE(dom.is_fenced(1));
  EXPECT_FALSE(dom.is_fenced(2));

  // The majority's quorate observers confirm the minority dead — and only
  // the minority: fenced observers' silence cannot evict the majority.
  ASSERT_TRUE(eventually(10'000, [&] {
    return dom.is_confirmed_dead(3) && dom.is_confirmed_dead(4);
  }));
  EXPECT_FALSE(dom.is_confirmed_dead(0));
  EXPECT_FALSE(dom.is_confirmed_dead(1));
  EXPECT_FALSE(dom.is_confirmed_dead(2));
  EXPECT_GE(builtin().membership_views.load() - views0, 2u);

  // Heal and re-admit: the rejoiners come back alive and unfenced.
  auto const rejoins0 = builtin().membership_rejoins.load();
  dom.fabric().faults().heal_all_partitions();
  dom.restart_locality(3);
  dom.restart_locality(4);
  EXPECT_TRUE(eventually(5'000, [&] {
    return !dom.membership().any_fenced() && !dom.is_confirmed_dead(3) &&
           !dom.is_confirmed_dead(4) &&
           dom.detector()->state_of(3) == px::dist::member_state::alive &&
           dom.detector()->state_of(4) == px::dist::member_state::alive;
  }));
  EXPECT_GE(builtin().membership_rejoins.load() - rejoins0, 2u);
  dom.wait_all_quiescent();
}

TEST(Quorum, AsymmetricPartitionFencesWithoutEviction) {
  // Gray partition: the minority's frames still reach the majority, only
  // the reverse direction is lost. The majority keeps hearing everyone, so
  // nobody is evicted; the minority cannot reach a quorum and fences until
  // heal — and heal alone (no restart) is the rejoin.
  auto const confirms0 = builtin().resilience_confirms.load();
  px::dist::distributed_domain dom(quorum_cfg(5));
  px::net::partition_spec spec;
  spec.side_a = {0, 1, 2};  // majority -> minority frames are lost
  spec.side_b = {3, 4};
  spec.symmetric = false;
  dom.fabric().faults().partition_now(spec);

  EXPECT_TRUE(eventually(5'000, [&] {
    return dom.is_fenced(3) && dom.is_fenced(4);
  }));
  // Hold the partition past the confirm threshold: still no eviction.
  std::this_thread::sleep_for(800ms);
  for (std::uint32_t l = 0; l < 5; ++l) EXPECT_FALSE(dom.is_confirmed_dead(l));
  EXPECT_EQ(builtin().resilience_confirms.load() - confirms0, 0u);

  auto const rejoins0 = builtin().membership_rejoins.load();
  dom.fabric().faults().heal_all_partitions();
  EXPECT_TRUE(
      eventually(5'000, [&] { return !dom.membership().any_fenced(); }));
  EXPECT_GE(builtin().membership_rejoins.load() - rejoins0, 2u);
  for (std::uint32_t l = 0; l < 5; ++l) EXPECT_FALSE(dom.is_confirmed_dead(l));
  dom.wait_all_quiescent();
}

TEST(Quorum, SmallViewsNeverFence) {
  // The quorum_min_view carve-out: a 2-member view cannot distinguish a
  // dead peer from a cut link (confirming anything would need both members
  // reachable), so it reverts to independent confirm and never fences —
  // the pre-quorum behaviour the existing resilience tests rely on.
  px::dist::distributed_domain dom(quorum_cfg(2));
  dom.fabric().faults().hang_now(1);
  EXPECT_TRUE(eventually(10'000, [&] { return dom.is_confirmed_dead(1); }));
  EXPECT_FALSE(dom.is_fenced(0));
  EXPECT_FALSE(dom.is_fenced(1));
  dom.wait_all_quiescent();
}

// ---- gray failure: indirect probes ---------------------------------------

TEST(GrayFailure, OneWayLinkDoesNotConfirmKillAHealthyNode) {
  // Locality 1 never hears locality 0 directly (the 0->1 link is one-way
  // dead), yet 1 is quorate — without probes its silence judgment would
  // confirm-kill healthy 0 (the regression pinned below). SWIM probes
  // route 1's liveness check for 0 through a third party and avert the
  // escalation.
  auto const probes0 = builtin().membership_indirect_probes.load();
  auto const averted0 = builtin().membership_false_suspect_averted.load();
  px::dist::distributed_domain dom(quorum_cfg(4));
  ASSERT_GE(dom.membership().config().indirect_probes, 1u);

  px::net::partition_spec spec;
  spec.side_a = {0};
  spec.side_b = {1};
  spec.symmetric = false;
  dom.fabric().faults().partition_now(spec);

  // A probe round must fire and avert the false suspicion.
  EXPECT_TRUE(eventually(10'000, [&] {
    return builtin().membership_indirect_probes.load() - probes0 >= 1 &&
           builtin().membership_false_suspect_averted.load() - averted0 >= 1;
  }));
  // Hold the gray link well past the confirm threshold: nobody dies.
  std::this_thread::sleep_for(1'000ms);
  for (std::uint32_t l = 0; l < 4; ++l) EXPECT_FALSE(dom.is_confirmed_dead(l));
  dom.wait_all_quiescent();
}

TEST(GrayFailure, RegressionWithoutProbesTheOneWayLinkConfirmKills) {
  // The failure mode this PR closes, pinned: disable indirect probing and
  // the same one-way link escalates healthy locality 0 all the way to
  // confirmed dead on the strength of a single observer's silence.
  auto cfg = quorum_cfg(4);
  cfg.membership.indirect_probes = 0;
  px::dist::distributed_domain dom(cfg);
  ASSERT_EQ(dom.membership().config().indirect_probes, 0u);

  px::net::partition_spec spec;
  spec.side_a = {0};
  spec.side_b = {1};
  spec.symmetric = false;
  dom.fabric().faults().partition_now(spec);

  EXPECT_TRUE(eventually(10'000, [&] { return dom.is_confirmed_dead(0); }));
  EXPECT_FALSE(dom.is_confirmed_dead(1));
  dom.wait_all_quiescent();
}

// ---- revive-during-suspect race ------------------------------------------

TEST(ReviveRace, StateLadderStaysMonotonePerEpoch) {
  px::dist::distributed_domain dom(quorum_cfg(3));
  auto const epoch0 = dom.membership_epoch();

  std::atomic<std::uint64_t> suspect_fires{0};
  std::atomic<int> state_at_fire{-1};
  dom.detector()->on_suspect([&](std::uint32_t loc) {
    if (loc != 2) return;
    // A suspect callback must never fire for a member whose standing
    // already moved on (the stale-callback race this PR closes): at fire
    // time the member is still suspect.
    state_at_fire.store(static_cast<int>(dom.detector()->state_of(2)));
    suspect_fires.fetch_add(1);
  });

  auto const gen0 = dom.detector()->state_generation(2);
  dom.fabric().faults().hang_now(2);
  ASSERT_TRUE(eventually(5'000, [&] {
    return dom.detector()->state_of(2) == px::dist::member_state::suspect;
  }));
  EXPECT_TRUE(eventually(2'000, [&] { return suspect_fires.load() >= 1; }));
  EXPECT_EQ(state_at_fire.load(),
            static_cast<int>(px::dist::member_state::suspect));

  // Revive while suspect: heartbeats resume, the detector de-escalates.
  dom.fabric().faults().revive(2);
  EXPECT_TRUE(eventually(5'000, [&] {
    return dom.detector()->state_of(2) == px::dist::member_state::alive;
  }));
  // Two transitions minimum (alive -> suspect -> alive) within the same
  // membership epoch, and no confirm anywhere.
  EXPECT_GE(dom.detector()->state_generation(2) - gen0, 2u);
  EXPECT_EQ(dom.membership_epoch(), epoch0);
  EXPECT_FALSE(dom.is_confirmed_dead(2));

  // Settled and healthy: no stale suspect may fire after the de-escalation.
  auto const settled = suspect_fires.load();
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(suspect_fires.load(), settled);
  EXPECT_EQ(dom.detector()->state_of(2), px::dist::member_state::alive);
  dom.wait_all_quiescent();
}

// ---- fencing gates refuse with typed errors ------------------------------

px::dist::domain_config plain_cfg(std::size_t n) {
  px::dist::domain_config cfg;
  cfg.num_localities = n;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  return cfg;
}

TEST(Fencing, MigrationRefusesFencedEndpointsWithTypedError) {
  auto const refusals0 = builtin().membership_fenced_refusals.load();
  px::dist::distributed_domain dom(plain_cfg(3));
  auto const g =
      dom.run([](px::dist::locality& loc0) { return pt_make(loc0, 7); });

  // Fenced destination.
  dom.membership().set_fenced(2, true);
  dom.run([&](px::dist::locality& loc0) {
    try {
      (void)px::dist::migrate<part_cell>(loc0, g, 2).get();
      ADD_FAILURE() << "migration to a fenced locality must refuse";
    } catch (px::dist::fenced_error const& e) {
      EXPECT_EQ(e.where(), 2u);
      EXPECT_NE(std::string(e.what()).find("fenced"), std::string::npos);
    }
    return 0;
  });
  EXPECT_EQ(builtin().membership_fenced_refusals.load() - refusals0, 1u);

  // A fenced source refuses too (checked before the destination).
  dom.membership().set_fenced(2, false);
  dom.membership().set_fenced(0, true);
  dom.run([&](px::dist::locality& loc0) {
    try {
      (void)px::dist::migrate<part_cell>(loc0, g, 2).get();
      ADD_FAILURE() << "migration from a fenced locality must refuse";
    } catch (px::dist::fenced_error const& e) {
      EXPECT_EQ(e.where(), 0u);
    }
    return 0;
  });
  EXPECT_EQ(builtin().membership_fenced_refusals.load() - refusals0, 2u);

  // Unfenced: the same migration commits, and the refusals left no pin or
  // tombstone behind — the object reads back where it landed.
  dom.membership().set_fenced(0, false);
  dom.run([&](px::dist::locality& loc0) {
    auto const moved = px::dist::migrate<part_cell>(loc0, g, 2).get();
    EXPECT_EQ(moved.locality(), 2u);
    EXPECT_EQ(loc0.call_component<&pt_read>(moved).get(), 7u);
    return 0;
  });
  dom.wait_all_quiescent();
}

TEST(Fencing, RebalancerSkipsMovesTouchingFencedLocalities) {
  auto const refusals0 = builtin().membership_fenced_refusals.load();
  px::dist::distributed_domain dom(plain_cfg(3));
  dom.run([&](px::dist::locality& loc0) {
    auto const g1 = pt_make(loc0, 1);
    auto const g2 = pt_make(loc0, 2);

    px::agas::rebalance_config rcfg;
    rcfg.imbalance_trigger = 1.1;
    px::agas::rebalancer rb(
        dom, rcfg,
        [&loc0](px::agas::gid g, std::uint32_t, std::uint32_t to) {
          return px::dist::migrate<part_cell>(loc0, g, to);
        });
    // All weight on locality 0: the planner must want to spread it.
    rb.add_partition(1, g1, 0, 60.0);
    rb.add_partition(2, g2, 0, 60.0);

    dom.membership().set_fenced(0, true);  // the only possible source
    auto const fenced_rep = rb.step();
    EXPECT_GE(fenced_rep.planned, 1u);
    EXPECT_EQ(fenced_rep.moved, 0u);
    EXPECT_EQ(fenced_rep.fenced, fenced_rep.planned);
    EXPECT_GE(builtin().membership_fenced_refusals.load() - refusals0,
              fenced_rep.fenced);
    EXPECT_EQ(rb.home_of(1), std::optional<std::uint32_t>{0});  // nothing moved
    EXPECT_EQ(rb.home_of(2), std::optional<std::uint32_t>{0});

    dom.membership().set_fenced(0, false);  // heal: the moves retry
    auto const healed_rep = rb.step();
    EXPECT_GE(healed_rep.moved, 1u);
    EXPECT_EQ(healed_rep.fenced, 0u);
    EXPECT_TRUE(rb.home_of(1) != std::optional<std::uint32_t>{0} ||
                rb.home_of(2) != std::optional<std::uint32_t>{0});
    return 0;
  });
  dom.wait_all_quiescent();
}

TEST(Fencing, ServeShedsNewAdmissionsWhileFenced) {
  auto const refusals0 = builtin().membership_fenced_refusals.load();
  px::scheduler_config pool;
  pool.num_workers = 2;
  px::runtime rt(pool);

  std::atomic<bool> fenced{false};
  px::serve::server_config scfg;
  scfg.fenced = [&] { return fenced.load(); };
  px::serve::server srv(rt, scfg);

  px::serve::tenant_config tc;
  tc.name = "fenced-tenant";
  tc.max_in_flight = 64;
  auto const t = srv.add_tenant(tc);

  px::serve::job_request req;
  req.kind = px::serve::job_kind::spin;
  req.size = 16;
  req.steps = 1;
  EXPECT_EQ(srv.submit(t, req), px::serve::admit_result::accepted);

  fenced.store(true);
  EXPECT_EQ(srv.submit(t, req), px::serve::admit_result::shed);
  EXPECT_EQ(srv.submit(t, req), px::serve::admit_result::shed);
  EXPECT_EQ(builtin().membership_fenced_refusals.load() - refusals0, 2u);
  EXPECT_EQ(srv.stats(t).rejected, 2u);

  fenced.store(false);
  EXPECT_EQ(srv.submit(t, req), px::serve::admit_result::accepted);
  srv.drain();
  EXPECT_EQ(srv.stats(t).completed, 2u);
}

TEST(Fencing, HeatCheckpointsSkipOnFencedHostsAndCountRefusals) {
  auto const initial = px::stencil::heat1d_sine_initial(101);
  px::stencil::dist_heat_config hc;
  hc.steps = 40;
  hc.checkpoint_interval = 10;

  // Baseline: no fence anywhere.
  px::dist::distributed_domain clean(plain_cfg(2));
  auto const baseline = px::stencil::run_distributed_heat1d(clean, initial, hc);
  clean.wait_all_quiescent();

  auto const refusals0 = builtin().membership_fenced_refusals.load();
  auto const ckpt0 = builtin().resilience_checkpoint_bytes.load();
  px::dist::distributed_domain dom(plain_cfg(2));
  dom.membership().set_fenced(1, true);
  auto const out = px::stencil::run_distributed_heat1d(dom, initial, hc);
  dom.wait_all_quiescent();

  // Locality 1's partition skipped every checkpoint commit (t = 10, 20,
  // 30), each one counted; locality 0's checkpoints still landed. With no
  // failure injected the skipped checkpoints cannot change the answer.
  EXPECT_GE(builtin().membership_fenced_refusals.load() - refusals0, 3u);
  EXPECT_GT(builtin().resilience_checkpoint_bytes.load() - ckpt0, 0u);
  EXPECT_EQ(out.values, baseline.values);
}

}  // namespace
