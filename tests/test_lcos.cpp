// Tests for the synchronization LCOs: latch, barrier, event, semaphore,
// mutex, condition_variable — from tasks and from external threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "px/px.hpp"

namespace {

struct LcoTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 4;
    return c;
  }()};
};

// ---- latch ---------------------------------------------------------------

TEST_F(LcoTest, LatchReleasesWaitersAtZero) {
  px::latch l(3);
  std::atomic<int> released{0};
  for (int i = 0; i < 5; ++i)
    rt.post([&] {
      l.wait();
      released.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(released.load(), 0);
  l.count_down(2);
  EXPECT_FALSE(l.try_wait());
  l.count_down();
  rt.wait_quiescent();
  EXPECT_EQ(released.load(), 5);
  EXPECT_TRUE(l.try_wait());
}

TEST_F(LcoTest, LatchWaitAfterZeroReturnsImmediately) {
  px::latch l(1);
  l.count_down();
  l.wait();
  SUCCEED();
}

TEST_F(LcoTest, LatchArriveAndWait) {
  px::latch l(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i)
    rt.post([&] {
      l.arrive_and_wait();
      done.fetch_add(1);
    });
  rt.wait_quiescent();
  EXPECT_EQ(done.load(), 4);
}

TEST_F(LcoTest, LatchExternalThreadWait) {
  px::latch l(1);
  rt.post([&] {
    px::this_task::sleep_for(std::chrono::milliseconds(10));
    l.count_down();
  });
  l.wait();  // external thread blocks on condvar path
  SUCCEED();
}

// ---- barrier -------------------------------------------------------------

TEST_F(LcoTest, BarrierSynchronizesPhases) {
  constexpr int parties = 4, rounds = 10;
  px::barrier bar(parties);
  std::atomic<int> in_phase{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> errors{0};
  for (int p = 0; p < parties; ++p)
    rt.post([&] {
      for (int r = 0; r < rounds; ++r) {
        int const now = in_phase.fetch_add(1) + 1;
        int expected = max_seen.load();
        while (now > expected &&
               !max_seen.compare_exchange_weak(expected, now)) {
        }
        bar.arrive_and_wait();
        // All parties arrived; between barriers the counter must have hit
        // exactly `parties`.
        bar.arrive_and_wait();
        if (p == 0) {
          if (in_phase.exchange(0) != parties) errors.fetch_add(1);
          max_seen.store(0);
        }
        bar.arrive_and_wait();
      }
    });
  rt.wait_quiescent();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(bar.phase(), static_cast<std::uint64_t>(3 * rounds));
}

TEST_F(LcoTest, BarrierSingleParty) {
  px::barrier bar(1);
  for (int i = 0; i < 5; ++i) bar.arrive_and_wait();
  EXPECT_EQ(bar.phase(), 5u);
}

// ---- event -----------------------------------------------------------------

TEST_F(LcoTest, EventReleasesAllWaiters) {
  px::event ev;
  std::atomic<int> woke{0};
  for (int i = 0; i < 6; ++i)
    rt.post([&] {
      ev.wait();
      woke.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(woke.load(), 0);
  ev.set();
  rt.wait_quiescent();
  EXPECT_EQ(woke.load(), 6);
  // Set events admit new waiters immediately.
  rt.post([&] {
    ev.wait();
    woke.fetch_add(1);
  });
  rt.wait_quiescent();
  EXPECT_EQ(woke.load(), 7);
}

TEST_F(LcoTest, EventReset) {
  px::event ev;
  ev.set();
  EXPECT_TRUE(ev.is_set());
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

// ---- semaphore ------------------------------------------------------------

TEST_F(LcoTest, SemaphoreLimitsConcurrency) {
  px::counting_semaphore sem(2);
  std::atomic<int> inside{0}, peak{0}, total{0};
  for (int i = 0; i < 20; ++i)
    rt.post([&] {
      sem.acquire();
      int const now = inside.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      px::this_task::sleep_for(std::chrono::milliseconds(2));
      inside.fetch_sub(1);
      sem.release();
      total.fetch_add(1);
    });
  rt.wait_quiescent();
  EXPECT_EQ(total.load(), 20);
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST_F(LcoTest, SemaphoreTryAcquire) {
  px::counting_semaphore sem(1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release();
}

TEST_F(LcoTest, SemaphoreBulkRelease) {
  px::counting_semaphore sem(0);
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i)
    rt.post([&] {
      sem.acquire();
      done.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(done.load(), 0);
  sem.release(3);
  rt.wait_quiescent();
  EXPECT_EQ(done.load(), 3);
}

// ---- mutex / condition_variable --------------------------------------------

TEST_F(LcoTest, MutexMutualExclusionAcrossTasks) {
  px::mutex m;
  long counter = 0;
  for (int t = 0; t < 8; ++t)
    rt.post([&] {
      for (int i = 0; i < 500; ++i) {
        std::lock_guard<px::mutex> guard(m);
        ++counter;
      }
    });
  rt.wait_quiescent();
  EXPECT_EQ(counter, 4000);
}

TEST_F(LcoTest, MutexTryLock) {
  px::mutex m;
  EXPECT_TRUE(m.try_lock());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
}

TEST_F(LcoTest, MutexHolderCanSuspend) {
  px::mutex m;
  std::atomic<bool> slow_done{false};
  rt.post([&] {
    std::lock_guard<px::mutex> guard(m);
    px::this_task::sleep_for(std::chrono::milliseconds(20));
    slow_done.store(true);
  });
  rt.post([&] {
    std::lock_guard<px::mutex> guard(m);
    EXPECT_TRUE(slow_done.load());  // only acquired after the sleeper left
  });
  rt.wait_quiescent();
}

TEST_F(LcoTest, ConditionVariableProducerConsumer) {
  px::mutex m;
  px::condition_variable cv;
  std::vector<int> queue;
  std::atomic<long> consumed_sum{0};
  constexpr int n = 200;

  for (int c = 0; c < 3; ++c)
    rt.post([&] {
      for (;;) {
        std::unique_lock<px::mutex> lock(m);
        cv.wait(lock, [&] { return !queue.empty(); });
        // FIFO so the poison pills (enqueued last) drain last.
        int v = queue.front();
        queue.erase(queue.begin());
        lock.unlock();
        if (v < 0) return;  // poison pill
        consumed_sum.fetch_add(v);
      }
    });

  rt.post([&] {
    for (int i = 1; i <= n; ++i) {
      {
        std::unique_lock<px::mutex> lock(m);
        queue.push_back(i);
      }
      cv.notify_one();
      if (i % 32 == 0) px::this_task::yield();
    }
    for (int c = 0; c < 3; ++c) {
      {
        std::unique_lock<px::mutex> lock(m);
        queue.push_back(-1);
      }
      cv.notify_one();
    }
  });

  rt.wait_quiescent();
  EXPECT_EQ(consumed_sum.load(), static_cast<long>(n) * (n + 1) / 2);
}

TEST_F(LcoTest, ConditionVariableNotifyAll) {
  px::mutex m;
  px::condition_variable cv;
  bool go = false;
  std::atomic<int> woke{0};
  for (int i = 0; i < 5; ++i)
    rt.post([&] {
      std::unique_lock<px::mutex> lock(m);
      cv.wait(lock, [&] { return go; });
      woke.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    std::unique_lock<px::mutex> lock(m);
    go = true;
  }
  cv.notify_all();
  rt.wait_quiescent();
  EXPECT_EQ(woke.load(), 5);
}

}  // namespace
