// Tests for async/post/sync_wait/dataflow.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "px/lcos/async.hpp"

namespace {

struct AsyncTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 3;
    return c;
  }()};
};

TEST_F(AsyncTest, AsyncOnReturnsValue) {
  auto f = px::async_on(rt, [] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST_F(AsyncTest, AsyncForwardsArguments) {
  auto f = px::async_on(rt, [](int a, std::string s) {
    return s + std::to_string(a);
  }, 7, std::string("x"));
  EXPECT_EQ(f.get(), "x7");
}

TEST_F(AsyncTest, AsyncVoidResult) {
  std::atomic<bool> ran{false};
  auto f = px::async_on(rt, [&ran] { ran.store(true); });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST_F(AsyncTest, AsyncPropagatesException) {
  auto f = px::async_on(rt, []() -> int { throw std::runtime_error("e"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, NestedAsyncUsesAmbientScheduler) {
  int result = px::sync_wait(rt, [] {
    auto f = px::async([] { return px::async([] { return 5; }).get() + 1; });
    return f.get();
  });
  EXPECT_EQ(result, 6);
}

TEST_F(AsyncTest, PostFireAndForget) {
  std::atomic<int> n{0};
  px::post_on(rt, [&n] { n.fetch_add(1); });
  px::post_on(rt, [&n](int k) { n.fetch_add(k); }, 4);
  rt.wait_quiescent();
  EXPECT_EQ(n.load(), 5);
}

TEST_F(AsyncTest, SyncWaitReturnsTaskResult) {
  EXPECT_EQ(px::sync_wait(rt, [](int x) { return x * 3; }, 5), 15);
}

TEST_F(AsyncTest, SyncWaitPropagatesException) {
  EXPECT_THROW(px::sync_wait(rt, [] { throw std::logic_error("z"); }),
               std::logic_error);
}

TEST_F(AsyncTest, DataflowCombinesTwoFutures) {
  int result = px::sync_wait(rt, [] {
    auto a = px::async([] { return 10; });
    auto b = px::async([] { return 32; });
    auto c = px::dataflow(
        [](px::future<int> x, px::future<int> y) { return x.get() + y.get(); },
        std::move(a), std::move(b));
    return c.get();
  });
  EXPECT_EQ(result, 42);
}

TEST_F(AsyncTest, DataflowMixedTypes) {
  auto result = px::sync_wait(rt, [] {
    auto a = px::async([] { return 2; });
    auto b = px::async([] { return std::string("ab"); });
    return px::dataflow(
               [](px::future<int> x, px::future<std::string> y) {
                 return y.get() + std::to_string(x.get());
               },
               std::move(a), std::move(b))
        .get();
  });
  EXPECT_EQ(result, "ab2");
}

TEST_F(AsyncTest, DataflowWaitsForSlowInput) {
  auto result = px::sync_wait(rt, [] {
    auto slow = px::async([] {
      px::this_task::sleep_for(std::chrono::milliseconds(30));
      return 1;
    });
    auto fast = px::make_ready_future(2);
    return px::dataflow(
               [](px::future<int> a, px::future<int> b) {
                 return a.get() + b.get();
               },
               std::move(slow), std::move(fast))
        .get();
  });
  EXPECT_EQ(result, 3);
}

TEST_F(AsyncTest, DataflowChain) {
  // A small DAG: d = (a+b) * c, all through dataflow.
  auto result = px::sync_wait(rt, [] {
    auto a = px::async([] { return 3; });
    auto b = px::async([] { return 4; });
    auto ab = px::dataflow(
        [](px::future<int> x, px::future<int> y) { return x.get() + y.get(); },
        std::move(a), std::move(b));
    auto c = px::async([] { return 6; });
    return px::dataflow(
               [](px::future<int> s, px::future<int> m) {
                 return s.get() * m.get();
               },
               std::move(ab), std::move(c))
        .get();
  });
  EXPECT_EQ(result, 42);
}

TEST_F(AsyncTest, ManyConcurrentAsyncs) {
  long total = px::sync_wait(rt, [] {
    std::vector<px::future<int>> futs;
    futs.reserve(500);
    for (int i = 0; i < 500; ++i)
      futs.push_back(px::async([i] { return i; }));
    long sum = 0;
    for (auto& f : futs) sum += f.get();
    return sum;
  });
  EXPECT_EQ(total, 500L * 499 / 2);
}

}  // namespace
