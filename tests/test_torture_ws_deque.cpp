// Seed-sweep torture of the raw Chase–Lev deque: take-vs-steal on the last
// element, empty-steal hammering, and growth under concurrent theft. The
// deque_pop / deque_steal torture points sit exactly inside the published
// race windows (bottom decremented but fence pending; top read but CAS
// pending), so these sweeps explore the interleavings the PPoPP'13
// orderings exist for.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "px/runtime/ws_deque.hpp"
#include "px/torture/forall.hpp"

namespace {

namespace torture = px::torture;
using px::rt::ws_deque;

// Perturber template for raw-deque runs: no timer in play, keep sleeps
// short so a sweep stays fast even at 64 seeds.
torture::forall_options deque_opts() {
  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.5;
  opts.perturb.max_sleep_us = 20;
  opts.dump_stem = "torture-ws-deque";
  return opts;
}

TEST(TortureWsDeque, SingleElementTakeVsStealExactlyOnce) {
  auto r = torture::forall_seeds(
      torture::seed_count(6),
      [](std::uint64_t) {
        // One element, one owner pop racing one thief steal, many rounds:
        // exactly one side may win each round.
        constexpr int rounds = 300;
        ws_deque<int> dq(8);
        int item = 42;
        std::atomic<int> round{-1};
        std::atomic<int> wins{0};
        std::atomic<bool> stop{false};

        std::thread thief([&] {
          int seen = -1;
          while (!stop.load(std::memory_order_acquire)) {
            int const cur = round.load(std::memory_order_acquire);
            if (cur == seen) continue;
            seen = cur;
            if (dq.steal() != nullptr) wins.fetch_add(1);
          }
        });
        for (int i = 0; i < rounds; ++i) {
          dq.push(&item);
          round.store(i, std::memory_order_release);
          int got = dq.pop() != nullptr ? 1 : 0;
          // The thief may still be mid-steal; drain before the next round
          // so a straggling steal cannot see the *next* round's element.
          while (got == 0 && wins.load(std::memory_order_acquire) <= i)
            std::this_thread::yield();
          if (got) wins.fetch_add(1);
        }
        stop.store(true, std::memory_order_release);
        thief.join();
        if (wins.load() != rounds)
          throw std::runtime_error(
              "take-vs-steal settled " + std::to_string(wins.load()) +
              " times over " + std::to_string(rounds) + " rounds");
        if (dq.steal() != nullptr || dq.pop() != nullptr)
          throw std::runtime_error("deque not empty after the rounds");
      },
      deque_opts());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureWsDeque, EmptyStealHammeringNeverFabricatesWork)
{
  auto r = torture::forall_seeds(
      torture::seed_count(6),
      [](std::uint64_t) {
        // Thieves hammer a mostly-empty deque while the owner pulses single
        // items through it; every returned pointer must be the real item
        // and the total across consumers must balance exactly.
        constexpr int pulses = 400;
        ws_deque<int> dq(8);
        int item = 7;
        std::atomic<int> consumed{0};
        std::atomic<bool> stop{false};

        std::vector<std::thread> thieves;
        for (int t = 0; t < 3; ++t)
          thieves.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
              int* const p = dq.steal();
              if (p == nullptr) continue;
              if (p != &item) std::abort();  // fabricated pointer
              consumed.fetch_add(1);
            }
          });
        for (int i = 0; i < pulses; ++i) {
          dq.push(&item);
          if (int* const p = dq.pop(); p != nullptr) {
            if (p != &item) std::abort();
            consumed.fetch_add(1);
          }
          // Wait for the element to be accounted before the next pulse.
          while (consumed.load(std::memory_order_acquire) <= i)
            std::this_thread::yield();
        }
        stop.store(true, std::memory_order_release);
        for (auto& t : thieves) t.join();
        if (consumed.load() != pulses)
          throw std::runtime_error(
              "consumed " + std::to_string(consumed.load()) + " of " +
              std::to_string(pulses) + " pulsed items");
      },
      deque_opts());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureWsDeque, GrowthDuringConcurrentStealLosesNothing) {
  auto r = torture::forall_seeds(
      torture::seed_count(6),
      [](std::uint64_t) {
        // Tiny initial ring so pushes grow it several times while thieves
        // read the (possibly retired) old arrays mid-steal. Every item is
        // consumed exactly once: per-slot counters catch double delivery,
        // the final sum catches loss.
        constexpr int n = 4096;
        ws_deque<int> dq(4);
        std::vector<int> items(n);
        std::vector<std::atomic<int>> seen(n);
        for (auto& s : seen) s.store(0, std::memory_order_relaxed);
        std::atomic<bool> done_pushing{false};
        std::atomic<int> consumed{0};

        auto consume = [&](int* p) {
          auto const idx = static_cast<std::size_t>(p - items.data());
          if (idx >= items.size()) std::abort();
          if (seen[idx].fetch_add(1) != 0) std::abort();  // double delivery
          consumed.fetch_add(1);
        };

        std::vector<std::thread> thieves;
        for (int t = 0; t < 2; ++t)
          thieves.emplace_back([&] {
            for (;;) {
              if (int* const p = dq.steal()) {
                consume(p);
                continue;
              }
              if (done_pushing.load(std::memory_order_acquire) &&
                  consumed.load(std::memory_order_acquire) >= n)
                return;
              std::this_thread::yield();
            }
          });
        for (int i = 0; i < n; ++i) {
          dq.push(&items[static_cast<std::size_t>(i)]);
          // Interleave owner pops so both ends race the growth.
          if ((i & 7) == 0)
            if (int* const p = dq.pop()) consume(p);
        }
        done_pushing.store(true, std::memory_order_release);
        while (consumed.load(std::memory_order_acquire) < n)
          if (int* const p = dq.pop())
            consume(p);
          else
            std::this_thread::yield();
        for (auto& t : thieves) t.join();
        if (consumed.load() != n)
          throw std::runtime_error("item count off: " +
                                   std::to_string(consumed.load()));
      },
      deque_opts());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureWsDeque, BatchStealConservesUnderPerturbedSchedules) {
  auto r = torture::forall_seeds(
      torture::seed_count(6),
      [](std::uint64_t) {
        // Batch thieves (steal-half) racing the owner's push/pop under the
        // perturber: batches are loops of single-slot CAS steals, so the
        // single-element guarantees must carry over — exactly-once per
        // item, no fabricated pointers, batches bounded by the visible
        // half. The perturber's deque_steal site sleeps between the CASes
        // inside a batch, which is precisely where a range-claim design
        // would break against owner pops.
        constexpr int n = 4096;
        ws_deque<int> dq(8);
        std::vector<int> items(n);
        std::vector<std::atomic<int>> seen(n);
        for (auto& s : seen) s.store(0, std::memory_order_relaxed);
        std::atomic<bool> done_pushing{false};
        std::atomic<int> consumed{0};

        auto consume = [&](int* p) {
          auto const idx = static_cast<std::size_t>(p - items.data());
          if (idx >= items.size()) std::abort();  // fabricated pointer
          if (seen[idx].fetch_add(1) != 0) std::abort();  // double delivery
          consumed.fetch_add(1);
        };

        std::vector<std::thread> thieves;
        for (int t = 0; t < 2; ++t)
          thieves.emplace_back([&] {
            int* batch[16];
            for (;;) {
              std::size_t const k = dq.steal_batch(batch, 16);
              if (k > 16) std::abort();  // over the caller's cap
              for (std::size_t i = 0; i < k; ++i) consume(batch[i]);
              if (k > 0) continue;
              if (done_pushing.load(std::memory_order_acquire) &&
                  consumed.load(std::memory_order_acquire) >= n)
                return;
              std::this_thread::yield();
            }
          });
        for (int i = 0; i < n; ++i) {
          dq.push(&items[static_cast<std::size_t>(i)]);
          if ((i & 7) == 0)
            if (int* const p = dq.pop()) consume(p);
        }
        done_pushing.store(true, std::memory_order_release);
        while (consumed.load(std::memory_order_acquire) < n)
          if (int* const p = dq.pop())
            consume(p);
          else
            std::this_thread::yield();
        for (auto& t : thieves) t.join();
        if (consumed.load() != n)
          throw std::runtime_error("item count off: " +
                                   std::to_string(consumed.load()));
      },
      deque_opts());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
