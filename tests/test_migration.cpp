// AGAS migration protocol: transactional departure (commit on arrival ack,
// rollback on transport failure), residence cache + forwarding tombstones,
// parking during the pinned window, and exact counter accounting. The
// `ctest -L agas` lane runs this with test_rebalance and the migration
// torture sweep.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/dist/migration.hpp"
#include "px/dist/partitioned_vector.hpp"
#include "px/net/reliability.hpp"

namespace {

struct mig_cell {
  int value = 0;
  std::vector<std::uint32_t> hosts;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& value& hosts;
  }
};

struct other_type {
  int x = 0;
  template <typename Archive>
  void serialize(Archive& ar) {
    ar& x;
  }
};

px::agas::gid mig_make(px::dist::locality& here, int value) {
  auto cell = std::make_shared<mig_cell>();
  cell->value = value;
  cell->hosts.push_back(here.id());
  return here.agas().bind(std::move(cell));
}

// call_component shape: the GID rides as the first argument and as the
// parcel's routing target.
int mig_read(px::dist::locality& here, px::agas::gid g) {
  auto cell = here.agas().resolve<mig_cell>(g);
  if (cell == nullptr) throw std::runtime_error("mig_cell not resident");
  return cell->value;
}

int mig_bump(px::dist::locality& here, px::agas::gid g, int by) {
  auto cell = here.agas().resolve<mig_cell>(g);
  if (cell == nullptr) throw std::runtime_error("mig_cell not resident");
  cell->value += by;
  cell->hosts.push_back(here.id());
  return cell->value;
}

px::agas::gid mig_hop(px::dist::locality& here, px::agas::gid g,
                      std::uint32_t dest) {
  return px::dist::migrate<mig_cell>(here, g, dest).get();
}

int mig_pin(px::dist::locality& here, px::agas::gid g) {
  return here.agas().begin_migration(g) ? 1 : 0;
}

int mig_unpin(px::dist::locality& here, px::agas::gid g) {
  here.abort_component_migration(g);
  return 0;
}

int mig_contains(px::dist::locality& here, px::agas::gid g) {
  return here.agas().contains(g) ? 1 : 0;
}

}  // namespace

PX_REGISTER_ACTION(mig_make)
PX_REGISTER_ACTION(mig_read)
PX_REGISTER_ACTION(mig_bump)
PX_REGISTER_ACTION(mig_hop)
PX_REGISTER_ACTION(mig_pin)
PX_REGISTER_ACTION(mig_unpin)
PX_REGISTER_ACTION(mig_contains)
PX_REGISTER_MIGRATABLE(mig_cell)
PX_REGISTER_MIGRATABLE(other_type)
PX_REGISTER_PARTITIONED_VECTOR(double)

namespace {

using namespace std::chrono_literals;
using px::counters::builtin;

px::dist::domain_config quiet_cfg(std::size_t nloc = 3) {
  px::dist::domain_config cfg;
  cfg.num_localities = nloc;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;  // deterministic counter accounting
  return cfg;
}

// ---- edge cases ----------------------------------------------------------

TEST(Migration, MigrateToSelfIsANoOp) {
  px::dist::distributed_domain dom(quiet_cfg());
  auto const before = builtin().agas_migrations.load();
  dom.run([&](px::dist::locality& loc0) {
    auto g = mig_make(loc0, 41);
    auto moved = px::dist::migrate<mig_cell>(loc0, g, loc0.id()).get();
    EXPECT_TRUE(px::agas::same_object(g, moved));
    EXPECT_EQ(moved.locality(), loc0.id());
    EXPECT_EQ(mig_read(loc0, g), 41);
    EXPECT_EQ(loc0.agas().epoch_of(g), 1u);  // no epoch bump
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(builtin().agas_migrations.load(), before);
}

TEST(Migration, GidNotResidentHereFails) {
  px::dist::distributed_domain dom(quiet_cfg());
  dom.run([&](px::dist::locality& loc0) {
    // Bound on locality 1, departure attempted from locality 0.
    auto g = loc0.call<&mig_make>(1, 7).get();
    EXPECT_THROW(px::dist::migrate<mig_cell>(loc0, g, 2).get(),
                 std::runtime_error);
    // Remote-to-self spelling of the same mistake.
    EXPECT_THROW(px::dist::migrate<mig_cell>(loc0, g, loc0.id()).get(),
                 std::runtime_error);
    // A GID that was never bound anywhere.
    auto ghost = px::agas::gid::make(0, 0xdeadbeef);
    EXPECT_THROW(px::dist::migrate<mig_cell>(loc0, ghost, 1).get(),
                 std::runtime_error);
    // The object is untouched where it actually lives.
    EXPECT_EQ(loc0.call<&mig_read>(1, g).get(), 7);
    return 0;
  });
  dom.wait_all_quiescent();
}

TEST(Migration, TypeMismatchedResolveFails) {
  px::dist::distributed_domain dom(quiet_cfg());
  dom.run([&](px::dist::locality& loc0) {
    auto g = mig_make(loc0, 1);
    EXPECT_THROW(px::dist::migrate<other_type>(loc0, g, 1).get(),
                 std::runtime_error);
    // The failed validation must not have pinned the object.
    EXPECT_FALSE(loc0.agas().is_migrating(g));
    auto moved = px::dist::migrate<mig_cell>(loc0, g, 1).get();
    EXPECT_EQ(moved.locality(), 1u);
    return 0;
  });
  dom.wait_all_quiescent();
}

TEST(Migration, DoubleMigrateRaceHasExactlyOneWinner) {
  px::dist::distributed_domain dom(quiet_cfg());
  dom.run([&](px::dist::locality& loc0) {
    auto g = mig_make(loc0, 5);
    // Both departures start before either settles: the second must lose
    // at begin_migration (the pin is the race arbiter).
    auto f1 = px::dist::migrate<mig_cell>(loc0, g, 1);
    auto f2 = px::dist::migrate<mig_cell>(loc0, g, 2);
    int wins = 0, losses = 0;
    px::agas::gid winner;
    for (auto* f : {&f1, &f2}) {
      try {
        winner = f->get();
        ++wins;
      } catch (std::runtime_error const&) {
        ++losses;
      }
    }
    EXPECT_EQ(wins, 1);
    EXPECT_EQ(losses, 1);
    EXPECT_EQ(winner.locality(), 1u);  // f1 pinned first
    // Exactly one resident copy in the whole cluster.
    int residents = 0;
    for (std::uint32_t l = 0; l < 3; ++l)
      residents += loc0.call<&mig_contains>(l, g).get();
    EXPECT_EQ(residents, 1);
    EXPECT_EQ(loc0.call_component<&mig_read>(g).get(), 5);
    return 0;
  });
  dom.wait_all_quiescent();
}

TEST(Migration, MigrateInFlightAcrossQuiesceSettles) {
  px::dist::distributed_domain dom(quiet_cfg());
  px::agas::gid g;
  dom.run([&](px::dist::locality& loc0) {
    g = mig_make(loc0, 9);
    // Fire the departure and return without waiting: the quiesce below
    // overlaps the in-flight transaction and must not observe a pinned
    // object once it settles.
    (void)px::dist::migrate<mig_cell>(loc0, g, 2);
    return 0;
  });
  ASSERT_TRUE(dom.wait_all_quiescent_for(30s));  // invariants run here
  dom.run([&](px::dist::locality& loc0) {
    EXPECT_FALSE(loc0.agas().is_migrating(g));
    EXPECT_EQ(loc0.call_component<&mig_read>(g).get(), 9);
    EXPECT_EQ(loc0.call<&mig_contains>(2, g).get(), 1);
    return 0;
  });
  dom.wait_all_quiescent();
}

// ---- transactional departure under a lossy / failed fabric ---------------

TEST(Migration, DepartureRollsBackWhenTheFabricEatsEverything) {
  px::dist::domain_config cfg = quiet_cfg(2);
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 1.0;  // nothing ever delivers
  cfg.faults.seed = 42;
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  cfg.reliability.initial_backoff_us = 5.0;
  cfg.reliability.max_backoff_us = 50.0;
  cfg.reliability.max_retries = 4;
  px::dist::distributed_domain dom(cfg);

  auto const aborts_before = builtin().agas_migration_aborts.load();
  auto const commits_before = builtin().agas_migrations.load();
  dom.run([&](px::dist::locality& loc0) {
    auto g = mig_make(loc0, 13);
    auto const epoch_before = loc0.agas().epoch_of(g);
    EXPECT_THROW(px::dist::migrate<mig_cell>(loc0, g, 1).get(),
                 px::net::delivery_error);
    // Rollback: still resident here, unpinned, same epoch, fully usable.
    EXPECT_TRUE(loc0.agas().contains(g));
    EXPECT_FALSE(loc0.agas().is_migrating(g));
    EXPECT_EQ(loc0.agas().epoch_of(g), epoch_before);
    EXPECT_EQ(mig_read(loc0, g), 13);
    EXPECT_EQ(mig_bump(loc0, g, 1), 14);
    return 0;
  });
  EXPECT_TRUE(dom.wait_all_quiescent_for(30s));
  EXPECT_EQ(builtin().agas_migration_aborts.load(), aborts_before + 1);
  EXPECT_EQ(builtin().agas_migrations.load(), commits_before);
}

TEST(Migration, DepartureRollsBackOnConfirmedDeadDestination) {
  px::dist::distributed_domain dom(quiet_cfg());
  dom.confirm_failure(1);
  dom.run([&](px::dist::locality& loc0) {
    auto g = mig_make(loc0, 21);
    EXPECT_THROW(px::dist::migrate<mig_cell>(loc0, g, 1).get(),
                 px::dist::locality_down);
    EXPECT_TRUE(loc0.agas().contains(g));
    EXPECT_FALSE(loc0.agas().is_migrating(g));
    // The rolled-back object migrates cleanly to a live destination.
    auto moved = px::dist::migrate<mig_cell>(loc0, g, 2).get();
    EXPECT_EQ(moved.locality(), 2u);
    EXPECT_EQ(loc0.call_component<&mig_read>(g).get(), 21);
    return 0;
  });
  dom.wait_all_quiescent();
}

// ---- parking during the pinned window ------------------------------------

TEST(Migration, ParcelsParkWhilePinnedAndReplayOnAbort) {
  px::dist::distributed_domain dom(quiet_cfg(2));
  auto const parked_before = builtin().agas_parked.load();
  dom.run([&](px::dist::locality& loc0) {
    auto g = loc0.call<&mig_make>(1, 3).get();
    ASSERT_EQ(loc0.call<&mig_pin>(1, g).get(), 1);
    // Addressed to the pinned object: must park at locality 1, not error.
    auto f = loc0.call_component<&mig_bump>(g, 4);
    while (builtin().agas_parked.load() == parked_before)
      px::this_task::yield();
    EXPECT_FALSE(f.valid() && f.is_ready());
    loc0.call<&mig_unpin>(1, g).get();
    EXPECT_EQ(f.get(), 7);  // released parcel dispatched after the abort
  });
  EXPECT_TRUE(dom.wait_all_quiescent_for(30s));
  EXPECT_GE(builtin().agas_parked.load(), parked_before + 1);
}

// ---- counters: exact accounting on a quiet fabric ------------------------

TEST(Migration, CountersAccountExactly) {
  px::dist::distributed_domain dom(quiet_cfg());
  auto const migrations = builtin().agas_migrations.load();
  auto const forwards = builtin().agas_forwards.load();
  auto const hits = builtin().agas_cache_hits.load();
  auto const misses = builtin().agas_cache_misses.load();
  auto const tombstones = builtin().agas_tombstones.load();
  auto const resolve_misses = builtin().agas_resolve_misses.load();
  auto const aborts = builtin().agas_migration_aborts.load();

  px::agas::gid g;
  dom.run([&](px::dist::locality& loc0) {
    g = loc0.call<&mig_make>(1, 100).get();
    // First hop: no cache entry (+1 miss), GID residence bits are fresh —
    // direct dispatch, zero forwards.
    EXPECT_EQ(loc0.call_component<&mig_read>(g).get(), 100);
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(builtin().agas_cache_misses.load(), misses + 1);
  EXPECT_EQ(builtin().agas_forwards.load(), forwards);

  dom.run([&](px::dist::locality& loc0) {
    // Depart 1 -> 2: one commit, one tombstone at the departure locality.
    EXPECT_EQ(loc0.call<&mig_hop>(1, g, 2).get().locality(), 2u);
    // Stale first hop: cache still empty here (+1 miss), residence bits
    // say 1, tombstone forwards to 2 (+1 forward), and both the forwarder
    // and the receiver push authoritative residence updates back here.
    EXPECT_EQ(loc0.call_component<&mig_read>(g).get(), 100);
    return 0;
  });
  dom.wait_all_quiescent();  // residence-update parcels land
  EXPECT_EQ(builtin().agas_migrations.load(), migrations + 1);
  EXPECT_EQ(builtin().agas_tombstones.load(), tombstones + 1);
  EXPECT_EQ(builtin().agas_forwards.load(), forwards + 1);
  EXPECT_EQ(builtin().agas_cache_misses.load(), misses + 2);

  dom.run([&](px::dist::locality& loc0) {
    // The forward taught this locality the truth: cache hit, no forward.
    ASSERT_TRUE(loc0.residence().lookup(g).has_value());
    EXPECT_EQ(loc0.residence().lookup(g)->loc, 2u);
    EXPECT_EQ(loc0.call_component<&mig_read>(g).get(), 100);
  });
  dom.wait_all_quiescent();
  EXPECT_EQ(builtin().agas_cache_hits.load(), hits + 1);
  EXPECT_EQ(builtin().agas_forwards.load(), forwards + 1);  // unchanged
  EXPECT_EQ(builtin().agas_cache_misses.load(), misses + 2);  // unchanged
  EXPECT_EQ(builtin().agas_resolve_misses.load(), resolve_misses);
  EXPECT_EQ(builtin().agas_migration_aborts.load(), aborts);
}

// ---- hop budget ----------------------------------------------------------

TEST(Migration, HopBudgetExhaustionFailsTheCaller) {
  px::dist::domain_config cfg = quiet_cfg();
  cfg.agas_max_hops = 0;  // any forward at all exhausts the budget
  px::dist::distributed_domain dom(cfg);
  dom.run([&](px::dist::locality& loc0) {
    auto g = loc0.call<&mig_make>(1, 55).get();
    EXPECT_EQ(loc0.call<&mig_hop>(1, g, 2).get().locality(), 2u);
    // Stale residence bits route to 1; the forward there would need one
    // hop, which the budget denies — the caller's future must fail, not
    // hang.
    EXPECT_THROW(loc0.call_component<&mig_read>(g).get(),
                 px::dist::hop_budget_exhausted);
    return 0;
  });
  dom.wait_all_quiescent();
}

// ---- partitioned_vector blocks are migratable components -----------------

TEST(Migration, PartitionedVectorSurvivesBlockMigration) {
  px::dist::distributed_domain dom(quiet_cfg());
  dom.run([&](px::dist::locality& loc0) {
    auto pv = px::dist::partitioned_vector<double>::create(loc0, 90, 1.0);
    for (std::size_t i = 0; i < 90; i += 7)
      pv.set(loc0, i, static_cast<double>(i));
    EXPECT_EQ(pv.get(loc0, 35), 35.0);

    // Move block 1 (locality 1's slice) to locality 2; the handle keeps
    // addressing it through the old GID via cache + tombstone.
    auto before = pv.gather(loc0);
    auto moved = pv.migrate_block(loc0, 1, 2);
    EXPECT_EQ(moved.locality(), 2u);
    EXPECT_EQ(pv.gather(loc0), before);
    EXPECT_EQ(pv.get(loc0, 35), 35.0);
    pv.set(loc0, 35, -1.0);
    EXPECT_EQ(pv.get(loc0, 35), -1.0);
    double const total = pv.sum(loc0);
    auto after = pv.gather(loc0);
    double expect = 0.0;
    for (double v : after) expect += v;
    EXPECT_EQ(total, expect);
    pv.destroy(loc0);
    return 0;
  });
  dom.wait_all_quiescent();
}

}  // namespace
