// Lossy-fabric x coalescing seed sweep: drop/dup/reorder whole coalesced
// envelopes under schedule perturbation and assert every logical parcel
// still delivers exactly once (heat solver bitwise identical to the
// fault-free run), obligations balance at quiesce, and the flush-at-quiesce
// ordering holds even when the deadline flush can never fire.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/invariant.hpp"

namespace {

int torture_co_echo(px::dist::locality& here, int x) {
  return static_cast<int>(here.id()) * 100 + x;
}

int torture_co_sink(px::dist::locality&, int) { return 0; }

}  // namespace

PX_REGISTER_ACTION(torture_co_echo)
PX_REGISTER_ACTION(torture_co_sink)

namespace {

namespace torture = px::torture;
using px::counters::builtin;
using namespace std::chrono_literals;

px::dist::domain_config lossy_coalesce_cfg(std::uint64_t seed) {
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.15;
  cfg.faults.duplicate = 0.05;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = static_cast<std::uint32_t>(seed ^ (seed >> 32));
  cfg.reliability.initial_backoff_us = 5.0;
  cfg.reliability.backoff_multiplier = 1.5;
  cfg.reliability.max_backoff_us = 100.0;
  cfg.reliability.max_retries = 64;
  cfg.coalescing.enabled = true;
  cfg.coalescing.compress = true;
  cfg.coalescing.max_parcels = 8;
  cfg.coalescing.flush_delay_us = 20.0;
  return cfg;
}

torture::forall_options coalesce_opts(char const* stem) {
  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.4;
  opts.perturb.max_sleep_us = 100;
  opts.dump_stem = stem;
  return opts;
}

void fail_quiesce(std::unique_ptr<px::dist::distributed_domain> dom,
                  char const* what) {
  dom->detach_invariants();
  auto const leaked = dom->obligations_in_flight();
  (void)dom.release();  // corrupted: destructor would hang
  throw torture::invariant_violation(
      {{"obligation-balance",
        std::to_string(leaked) + " obligation(s) in flight " + what}});
}

// The 16-seed exactly-once sweep the issue asks for: a coalesced frame
// carries many logical parcels, so every fault hits a whole batch; dedup
// and retransmission must still deliver each parcel exactly once, and the
// domain's quiesce invariants (obligation balance, dedup soundness,
// buffers empty) are asserted at every quiescence point.
TEST(TortureCoalesce, LossyEnvelopesDeliverExactlyOnceUnderSeeds) {
  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [](std::uint64_t seed) {
        auto dom = std::make_unique<px::dist::distributed_domain>(
            lossy_coalesce_cfg(seed));
        dom->run([](px::dist::locality& loc0) {
          std::vector<px::future<int>> fs;
          fs.reserve(80);
          for (int i = 0; i < 80; ++i)
            fs.push_back(loc0.call<&torture_co_echo>(1, i));
          for (int i = 0; i < 80; ++i)
            if (fs[static_cast<std::size_t>(i)].get() != 100 + i)
              throw std::runtime_error("remote call returned wrong value");
          return 0;
        });
        if (!dom->wait_all_quiescent_for(30s))
          fail_quiesce(std::move(dom), "after quiesce timeout");
      },
      coalesce_opts("torture-coalesce"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureCoalesce, HeatSolverBitwiseStableAcrossLossySeeds) {
  // Differential oracle with coalescing + compression on the lossy side:
  // the numerics cannot tell batching from per-parcel frames apart.
  auto const initial = px::stencil::heat1d_sine_initial(301);
  px::stencil::dist_heat_config hc;
  hc.steps = 10;

  px::dist::domain_config clean = lossy_coalesce_cfg(0);
  clean.faults = {};
  clean.coalescing = {};
  px::dist::distributed_domain clean_dom(clean);
  ASSERT_FALSE(clean_dom.reliable());
  ASSERT_FALSE(clean_dom.coalescing());
  auto const baseline = run_distributed_heat1d(clean_dom, initial, hc);
  clean_dom.wait_all_quiescent();

  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [&](std::uint64_t seed) {
        px::dist::distributed_domain dom(lossy_coalesce_cfg(seed));
        if (!dom.reliable() || !dom.coalescing())
          throw std::runtime_error("domain lost reliability or coalescing");
        auto const out = run_distributed_heat1d(dom, initial, hc);
        dom.wait_all_quiescent();
        if (out.values.size() != baseline.values.size() ||
            !(out.values == baseline.values))
          throw std::runtime_error(
              "coalesced lossy heat1d diverged bitwise from the "
              "fault-free run");
      },
      coalesce_opts("torture-coalesce-heat"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

// Flush-at-quiesce regression pinned under perturbation (bugfix
// satellite): the deadline flush can never fire, so the only way the
// buffered parcels' obligations drain is the quiesce-side flush — with
// torture sleeps widening the enqueue/quiesce race the old
// sleep-before-flush interleaving hangs every seed that lands a parcel in
// the buffer after the flush pass.
TEST(TortureCoalesce, QuiesceFlushOrderingHoldsUnderSeeds) {
  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [](std::uint64_t seed) {
        auto cfg = lossy_coalesce_cfg(seed);
        cfg.faults = {};  // the race under test is enqueue vs quiesce
        cfg.injection_scale = 0.0;
        cfg.reliability.activation =
            px::net::reliability_config::mode::on;
        cfg.coalescing.flush_delay_us = 3600.0 * 1e6;  // never fires
        cfg.coalescing.max_parcels = 1u << 30;         // never size-flushes
        cfg.coalescing.max_bytes = std::size_t{1} << 40;
        auto dom = std::make_unique<px::dist::distributed_domain>(cfg);
        dom->run([](px::dist::locality& loc0) {
          for (int i = 0; i < 40; ++i)
            loc0.apply<&torture_co_sink>(1, i);
          return 0;
        });
        if (!dom->wait_all_quiescent_for(10s))
          fail_quiesce(std::move(dom),
                       "(coalesce buffer missed the quiesce flush)");
      },
      coalesce_opts("torture-coalesce-quiesce"));
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
