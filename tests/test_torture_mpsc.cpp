// Seed sweeps pinning the injection-queue lost-wake fix (PR 5).
//
// The bug: mpsc_queue published its size estimate with a relaxed store that
// could lag the push (producer store buffer; weaker still on Arm), and
// park() trusted that estimate when deciding to sleep. A push whose
// notify() ran before the worker set parked_ left an item that neither the
// estimate (stale) nor the cv (never signaled) would surface — the worker
// slept on work until the 2 ms bounded wait expired.
//
// The fix makes park()'s pre-sleep check take the queue lock
// (inspect_locked()), which observes every completed push; later pushes see
// parked_ == true and signal. The worker counts rescued stalls in
// stats().stalled_wakes via a push-epoch comparison: a timeout that finds
// items whose push epoch predates the sleep is exactly a wake the pre-sleep
// check should have caught.
//
// scheduler_config::test_relaxed_wake_protocol reintroduces the old
// behavior (estimate-based pre-sleep check + unsynchronized publication
// that torture's mpsc_size_publish site can delay or drop entirely), the
// same bug-knob pattern as the reliability layer's ack-retry leak test.
// Under the knob the sweep observes stalled wakes; with the fix the same
// workloads — every seed — observe none.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "px/px.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/torture.hpp"

namespace {

namespace torture = px::torture;

// Hinted spawns land in the target worker's injection queue while the pool
// repeatedly runs dry, so pushes keep racing the park decision. Quiescing
// every round forces the workers back to idle (and, under the knob, makes
// the 2 ms rescue path the only way forward — the run terminates either
// way, it just stalls).
void hinted_spawn_storm(px::runtime& rt, int rounds) {
  int const workers = static_cast<int>(rt.num_workers());
  for (int round = 0; round < rounds; ++round) {
    for (int w = 0; w < workers; ++w) {
      rt.post([] { std::atomic_signal_fence(std::memory_order_seq_cst); }, w);
    }
    rt.wait_quiescent();
    if (round % 8 == 0) {
      // Let the workers actually reach park() between bursts.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

torture::forall_options storm_options() {
  torture::forall_options opts;
  // High decision probability: the interesting decision is
  // mpsc_size_publish (drop the size publication), and every dropped
  // publication is a potential lost wake. Sleeps stay tiny so a stalled
  // run's 2 ms rescues dominate, not the perturber.
  opts.perturb.perturb_probability = 0.9;
  opts.perturb.max_sleep_us = 30;
  opts.dump_stem = "torture-mpsc";
  return opts;
}

px::scheduler_config pool(bool relaxed_knob) {
  px::scheduler_config cfg;
  cfg.num_workers = 2;
  cfg.test_relaxed_wake_protocol = relaxed_knob;
  return cfg;
}

// With the locked pre-sleep check, a stalled wake is impossible by
// construction: any push that completed before the check is seen (the
// worker refuses to sleep), and any later push observes parked_ == true
// and signals. The detector must read zero on every seed.
TEST(TortureMpsc, FixedProtocolNeverStallsWakes) {
  auto const r = torture::forall_seeds(
      torture::seed_count(8),
      [](std::uint64_t) {
        px::runtime rt(pool(false));
        hinted_spawn_storm(rt, 48);
        auto const stats = rt.stats();
        if (stats.stalled_wakes != 0) {
          throw std::runtime_error(
              "lost wake under the fixed protocol: stalled_wakes = " +
              std::to_string(stats.stalled_wakes));
        }
      },
      storm_options());
  EXPECT_TRUE(r.passed) << r.message;
}

// Reintroducing the estimate-based sleep makes the same workload observe
// stalled wakes somewhere in the sweep. This is the test that fails if the
// fix regresses to the old protocol — and the proof that the detector (and
// the sweep above) actually has the power to see the bug.
TEST(TortureMpsc, RelaxedKnobReintroducesLostWakes) {
  std::atomic<std::uint64_t> total_stalls{0};
  auto const r = torture::forall_seeds(
      torture::seed_count(8),
      [&](std::uint64_t) {
        px::runtime rt(pool(true));
        hinted_spawn_storm(rt, 48);
        total_stalls.fetch_add(rt.stats().stalled_wakes,
                               std::memory_order_relaxed);
      },
      storm_options());
  ASSERT_TRUE(r.passed) << r.message;
  EXPECT_GT(total_stalls.load(), 0u)
      << "the relaxed-publication knob should produce rescued lost wakes; "
         "if it cannot, the detector would also miss a real regression";
}

// The rescue path itself: even under the knob every spawned task eventually
// runs (the bounded park wait re-inspects under the lock and repairs the
// estimate), so the bug manifests as latency, never as lost work.
TEST(TortureMpsc, RelaxedKnobStillQuiesces) {
  auto const r = torture::forall_seeds(
      torture::seed_count(4),
      [](std::uint64_t) {
        px::runtime rt(pool(true));
        std::atomic<int> ran{0};
        for (int w = 0; w < 2; ++w)
          for (int i = 0; i < 32; ++i)
            rt.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                    w);
        rt.wait_quiescent();
        if (ran.load() != 64) {
          throw std::runtime_error("lost work under relaxed knob: ran = " +
                                   std::to_string(ran.load()));
        }
      },
      storm_options());
  EXPECT_TRUE(r.passed) << r.message;
}

}  // namespace
