// Tests for the interconnect models: alpha-beta cost math, preset ordering
// (capable hosts vs the Hi1616), counters, injection scaling.
#include <gtest/gtest.h>

#include "px/counters/counters.hpp"
#include "px/net/fabric.hpp"

namespace {

using namespace px::net;

TEST(FabricModel, AlphaBetaCost) {
  fabric_model m{"test", 2.0, 10.0, 1.0};  // 2us + 1us + bytes/10GB/s
  EXPECT_DOUBLE_EQ(m.transfer_time_us(0), 3.0);
  // 10 GB/s = 10e3 bytes/us: 1 MB -> 100us + 3us
  EXPECT_NEAR(m.transfer_time_us(1000000), 103.0, 1e-9);
}

TEST(FabricModel, LatencyDominatesSmallMessages) {
  auto ib = infiniband_edr();
  double const t8 = ib.transfer_time_us(8);
  double const t16 = ib.transfer_time_us(16);
  EXPECT_NEAR(t8, t16, 0.01);  // both latency-bound
  EXPECT_GT(t8, ib.latency_us);
}

TEST(FabricModel, BandwidthDominatesLargeMessages) {
  auto ib = infiniband_edr();
  double const t1m = ib.transfer_time_us(1 << 20);
  double const t2m = ib.transfer_time_us(1 << 21);
  EXPECT_GT(t2m / t1m, 1.8);  // nearly linear in size
}

TEST(FabricModel, Hi1616IsWorseThanCapableHosts) {
  auto ib = infiniband_edr();
  auto weak = hi1616_nic();
  auto tofu = tofu_d();
  for (std::size_t bytes : {64u, 4096u, 1u << 20}) {
    EXPECT_GT(weak.transfer_time_us(bytes), ib.transfer_time_us(bytes))
        << bytes;
    EXPECT_GT(weak.transfer_time_us(bytes), tofu.transfer_time_us(bytes))
        << bytes;
  }
}

TEST(FabricModel, LoopbackIsEffectivelyFree) {
  auto lb = loopback();
  EXPECT_LT(lb.transfer_time_us(1 << 20), 0.01);
}

TEST(Fabric, InjectionScaleConvertsModeledTime) {
  fabric f(fabric_model{"t", 10.0, 1.0, 0.0}, 2.0);
  // 1000 bytes at 1 GB/s = 1us transfer + 10us latency = 11us modeled.
  EXPECT_NEAR(f.modeled_us(1000), 11.0, 1e-9);
  EXPECT_EQ(f.injected_delay_ns(1000), 22000u);  // x2 scale
  fabric none(fabric_model{"t", 10.0, 1.0, 0.0}, 0.0);
  EXPECT_EQ(none.injected_delay_ns(1000), 0u);
}

TEST(Fabric, CountersAccumulate) {
  fabric f(infiniband_edr(), 0.0);
  f.counters().record(100, 1.5);
  f.counters().record(200, 2.25);
  EXPECT_EQ(f.counters().messages.load(), 2u);
  EXPECT_EQ(f.counters().bytes.load(), 300u);
  EXPECT_NEAR(f.counters().modeled_us(), 3.75, 1e-3);
}

TEST(Fabric, RegistryMirrorKeepsSubMicrosecondResolution) {
  // The registry mirror accumulates the same fixed-point nanoseconds as the
  // local cell: a 0.25us message adds 250 to /px/net/modeled_ns instead of
  // truncating to zero whole microseconds.
  auto const before = px::counters::builtin().net_modeled_ns.load();
  fabric f(infiniband_edr(), 0.0);
  f.counters().record(8, 0.25);
  f.counters().record(8, 0.5);
  EXPECT_EQ(px::counters::builtin().net_modeled_ns.load() - before, 750u);
  std::uint64_t reg_value = 0;
  ASSERT_TRUE(px::counters::registry::instance().value_of(
      "/px/net/modeled_ns", reg_value));
  EXPECT_GE(reg_value, 750u);
}

}  // namespace
