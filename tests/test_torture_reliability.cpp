// Seed sweeps over the parcel reliability layer, its quiesce invariants,
// and the differential heat1d oracle — plus the harness's reason to exist:
// a deliberately reintroduced ack/RTO obligation leak (behind the
// test_reintroduce_ack_retry_leak flag) must be caught by the sweep and
// replay to the same invariant violation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/net/reliability.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/invariant.hpp"

namespace {

int torture_echo(px::dist::locality& here, int x) {
  return static_cast<int>(here.id()) * 100 + x;
}

}  // namespace

PX_REGISTER_ACTION(torture_echo)

namespace {

namespace torture = px::torture;
using namespace std::chrono_literals;

px::dist::domain_config lossy_cfg(std::uint64_t seed) {
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.faults.drop = 0.2;
  cfg.faults.duplicate = 0.05;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = static_cast<std::uint32_t>(seed ^ (seed >> 32));
  cfg.reliability.initial_backoff_us = 5.0;
  cfg.reliability.backoff_multiplier = 1.5;
  cfg.reliability.max_backoff_us = 100.0;
  cfg.reliability.max_retries = 64;
  return cfg;
}

torture::forall_options net_opts() {
  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.4;
  opts.perturb.max_sleep_us = 100;
  opts.dump_stem = "torture-reliability";
  return opts;
}

TEST(TortureReliability, CallsSettleAndInvariantsHoldUnderSeeds) {
  auto r = torture::forall_seeds(
      torture::seed_count(4),
      [](std::uint64_t seed) {
        auto dom = std::make_unique<px::dist::distributed_domain>(
            lossy_cfg(seed));
        dom->run([](px::dist::locality& loc0) {
          std::vector<px::future<int>> fs;
          fs.reserve(100);
          for (int i = 0; i < 100; ++i)
            fs.push_back(loc0.call<&torture_echo>(1, i));
          for (int i = 0; i < 100; ++i)
            if (fs[static_cast<std::size_t>(i)].get() != 100 + i)
              throw std::runtime_error("remote call returned wrong value");
          return 0;
        });
        if (!dom->wait_all_quiescent_for(30s)) {
          dom->detach_invariants();
          auto const leaked = dom->obligations_in_flight();
          (void)dom.release();  // corrupted: destructor would hang
          throw torture::invariant_violation(
              {{"obligation-balance",
                std::to_string(leaked) +
                    " obligation(s) in flight after quiesce timeout"}});
        }
      },
      net_opts());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureReliability, HeatSolverBitwiseStableAcrossLossySeeds) {
  // Differential oracle: one fault-free baseline, then per-seed lossy runs
  // whose fault plane is seeded from the sweep seed. Exactly-once delivery
  // means every seed must reproduce the baseline bitwise.
  auto const initial = px::stencil::heat1d_sine_initial(301);
  px::stencil::dist_heat_config hc;
  hc.steps = 10;

  px::dist::domain_config clean = lossy_cfg(0);
  clean.faults = {};
  px::dist::distributed_domain clean_dom(clean);
  ASSERT_FALSE(clean_dom.reliable());
  auto const baseline = run_distributed_heat1d(clean_dom, initial, hc);
  clean_dom.wait_all_quiescent();

  auto r = torture::forall_seeds(
      torture::seed_count(3),
      [&](std::uint64_t seed) {
        px::dist::distributed_domain dom(lossy_cfg(seed));
        if (!dom.reliable())
          throw std::runtime_error("lossy domain without reliability");
        auto const out = run_distributed_heat1d(dom, initial, hc);
        dom.wait_all_quiescent();
        if (out.values.size() != baseline.values.size() ||
            !(out.values == baseline.values))
          throw std::runtime_error(
              "lossy heat1d diverged bitwise from the fault-free run");
      },
      net_opts());
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

#if defined(PX_TORTURE) && PX_TORTURE

// The acceptance test for the whole harness: re-enact the historical
// ack/RTO obligation leak (fixed in the reliability layer's history) behind
// its test-only flag and prove the seed sweep catches it, shrinks it, dumps
// evidence, and that the failing seed replays to the same violation.
TEST(TortureReliability, ReintroducedAckRetryLeakIsCaught) {
  auto leaky_property = [](std::uint64_t seed) {
    px::dist::domain_config cfg = lossy_cfg(seed);
    // Inline delivery: a data frame's ack chain runs on the calling
    // thread, so torture sleeps inside transmit/deliver push the ack past
    // the (tiny) RTO and into the leaky retry's unprotected window. Keep
    // drops rare — a genuinely dropped frame retransmits with NO ack in
    // flight to race, so nearly every RTO should be a spurious one racing
    // a live (perturbation-delayed) ack chain.
    cfg.injection_scale = 0.0;
    cfg.faults.duplicate = 0.0;
    cfg.faults.reorder = 0.0;
    cfg.faults.drop = 0.05;
    cfg.reliability.initial_backoff_us = 1.0;
    cfg.reliability.max_backoff_us = 20.0;
    cfg.reliability.test_reintroduce_ack_retry_leak = true;

    auto dom = std::make_unique<px::dist::distributed_domain>(cfg);
    dom->run([](px::dist::locality& loc0) {
      std::vector<px::future<int>> fs;
      fs.reserve(150);
      for (int i = 0; i < 150; ++i)
        fs.push_back(loc0.call<&torture_echo>(1, i));
      for (auto& f : fs) (void)f.get();
      return 0;
    });
    if (!dom->wait_all_quiescent_for(2s)) {
      auto const leaked = dom->obligations_in_flight();
      dom->detach_invariants();
      // The leak makes the destructor hang on the unreleased obligation;
      // leaking the corrupted domain is the documented escape hatch (the
      // torture suites do not run under the sanitizer lane).
      (void)dom.release();
      throw torture::invariant_violation(
          {{"obligation-balance",
            std::to_string(leaked) +
                " obligation(s) in flight after quiesce timeout "
                "(ack/RTO leak)"}});
    }
  };

  torture::forall_options opts = net_opts();
  opts.perturb.perturb_probability = 0.5;
  opts.perturb.max_sleep_us = 200;
  // No deadline jitter: jitter only ever delays the RTO, and a late RTO
  // loses the race this test needs it to win.
  opts.perturb.timer_jitter_ns = 0;
  opts.dump_stem = "torture-leak";
  // Shrink runs that still leak cost a 2s quiesce timeout each; keep the
  // bisection short.
  opts.max_shrink_runs = 4;

  auto r = torture::forall_seeds(torture::seed_count(16), leaky_property,
                                 opts);
  ASSERT_FALSE(r.passed)
      << "the reintroduced ack/RTO leak survived " << r.seeds_run
      << " torture seeds undetected";
  EXPECT_NE(r.message.find("obligation-balance"), std::string::npos)
      << r.message;

  // The failure evidence dump exists and names the invariant.
  std::string const dump_path =
      "torture-leak-" + std::to_string(r.failing_seed) + ".json";
  std::ifstream dump(dump_path);
  EXPECT_TRUE(dump.good()) << "missing failure dump " << dump_path;
  std::remove(dump_path.c_str());

  // Replay: the reported seed must reproduce the same invariant violation.
  // The leak needs the widened race window, so replay with the full
  // perturbation budget; one seed occasionally needs a second throw of the
  // same schedule neighbourhood, so allow a bounded number of replays.
  bool replayed = false;
  for (int attempt = 0; attempt < 3 && !replayed; ++attempt) {
    auto f = torture::run_one(r.failing_seed, leaky_property, opts.perturb);
    if (f && f->find("obligation-balance") != std::string::npos)
      replayed = true;
  }
  EXPECT_TRUE(replayed)
      << "seed " << r.failing_seed << " did not replay the leak";
}

#else

TEST(TortureReliability, ReintroducedAckRetryLeakIsCaught) {
  GTEST_SKIP() << "PX_TORTURE hooks compiled out";
}

#endif

}  // namespace
