// Tests for the px::torture harness itself (decision-stream determinism,
// forall_seeds plumbing, shrink + failure dumps) and seed sweeps over the
// scheduler-facing LCO workloads: futures, channels, latches and yield
// storms all re-run under perturbed schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <vector>

#include "px/counters/counters.hpp"
#include "px/lcos/async.hpp"
#include "px/px.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/invariant.hpp"
#include "px/torture/torture.hpp"

namespace {

namespace torture = px::torture;
using px::counters::builtin;

px::scheduler_config small_pool() {
  px::scheduler_config cfg;
  cfg.num_workers = 4;
  return cfg;
}

// ---- determinism ---------------------------------------------------------

TEST(TortureCore, DecisionStreamReplaysBitExact) {
  // Same seed, same thread -> identical decision/jitter sequences. This is
  // the contract a printed failing seed relies on.
  torture::config cfg;
  cfg.seed = 0xfeedf00d;
  cfg.perturb_probability = 0.5;
  cfg.max_sleep_us = 0;  // keep the replay loop instant
  cfg.max_spin = 4;

  auto draw = [&] {
    std::vector<std::uint64_t> stream;
    torture::enable(cfg);
    for (int i = 0; i < 200; ++i) {
      stream.push_back(
          torture::decide(torture::site::sched_enqueue) ? 1u : 0u);
      stream.push_back(
          torture::deadline_jitter_ns(torture::site::timer_deadline));
    }
    torture::disable();
    return stream;
  };
  auto const a = draw();
  auto const b = draw();
  EXPECT_EQ(a, b);

  cfg.seed = 0xfeedf00e;  // neighbouring seed: different stream
  std::vector<std::uint64_t> c;
  torture::enable(cfg);
  for (int i = 0; i < 200; ++i) {
    c.push_back(torture::decide(torture::site::sched_enqueue) ? 1u : 0u);
    c.push_back(torture::deadline_jitter_ns(torture::site::timer_deadline));
  }
  torture::disable();
  EXPECT_NE(a, c);
}

TEST(TortureCore, BudgetZeroAppliesNothing) {
  torture::config cfg;
  cfg.seed = 7;
  cfg.perturb_probability = 1.0;
  cfg.max_perturbations = 0;
  torture::enable(cfg);
  for (int i = 0; i < 100; ++i) {
    torture::point(torture::site::deque_pop);
    EXPECT_FALSE(torture::decide(torture::site::sched_enqueue));
  }
  EXPECT_EQ(torture::run_perturbations(), 0u);
  EXPECT_GT(torture::run_decisions(), 0u);
  torture::disable();
}

// ---- forall plumbing -----------------------------------------------------

TEST(TortureForall, CleanPropertyPassesAllSeeds) {
  auto const decisions_before = builtin().torture_decisions.load();
  auto const seeds_before = builtin().torture_seeds_run.load();

  auto r = torture::forall_seeds(torture::seed_count(4), [](std::uint64_t) {
    px::runtime rt(small_pool());
    std::atomic<int> sum{0};
    for (int i = 0; i < 64; ++i) rt.post([&sum] { sum.fetch_add(1); });
    rt.wait_quiescent();
    if (sum.load() != 64) throw std::runtime_error("lost task");
  });
  EXPECT_TRUE(r.passed) << r.message;
  EXPECT_GE(r.seeds_run, torture::seed_count(4));
  EXPECT_GE(builtin().torture_seeds_run.load() - seeds_before,
            torture::seed_count(4));
#if defined(PX_TORTURE) && PX_TORTURE
  // The hooks are compiled in, so running a pool under the perturber must
  // have consulted decision points.
  EXPECT_GT(builtin().torture_decisions.load(), decisions_before);
#else
  (void)decisions_before;
#endif
}

TEST(TortureForall, RunSeedVariesUnderTheSweep) {
  // Satellite: the steal-victim RNG is no longer seeded identically across
  // runs — under torture the run seed mixes the torture seed, and the
  // effective value is visible in runtime::stats().
  std::vector<std::uint64_t> seen;
  auto r = torture::forall_seeds(2, [&seen](std::uint64_t) {
    px::runtime rt(small_pool());
    rt.post([] {});
    rt.wait_quiescent();
    seen.push_back(rt.stats().run_seed);
  });
  ASSERT_TRUE(r.passed) << r.message;
  ASSERT_EQ(seen.size(), 2u);
#if defined(PX_TORTURE) && PX_TORTURE
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_NE(seen[0], 0x5eedbeefull);
#endif
  // Outside a torture run the config seed is used verbatim (PX_SEED or the
  // historical default), keeping plain runs reproducible.
  px::runtime rt(small_pool());
  EXPECT_EQ(rt.stats().run_seed, 0x5eedbeefull);
}

TEST(TortureForall, ShrinkerMinimizesAndDumpsInjectedFailure) {
  // A failure independent of the perturbations must shrink to budget 0 (the
  // report then says: this is seed-dependent or a plain bug, the perturber
  // is not needed) and leave a JSON evidence file behind.
  std::string const stem = "torture-selftest";
  auto r = torture::forall_seeds(
      2,
      [](std::uint64_t) {
        px::runtime rt(small_pool());
        std::atomic<int> sum{0};
        for (int i = 0; i < 8; ++i) rt.post([&sum] { sum.fetch_add(1); });
        rt.wait_quiescent();
        throw std::runtime_error("injected self-test failure");
      },
      [&] {
        torture::forall_options opts;
        opts.dump_stem = stem;
        return opts;
      }());
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.seeds_run, 1u);  // stop at first failure
  EXPECT_NE(r.message.find("injected self-test failure"), std::string::npos);
  EXPECT_EQ(r.min_perturbations, 0u);

  std::string const path =
      stem + "-" + std::to_string(r.failing_seed) + ".json";
  std::ifstream dump(path);
  ASSERT_TRUE(dump.good()) << "missing failure dump " << path;
  std::string text((std::istreambuf_iterator<char>(dump)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"seed\":"), std::string::npos);
  EXPECT_NE(text.find("\"counters\":"), std::string::npos);
  EXPECT_NE(text.find("\"perturbation_trace\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TortureForall, RunOneReportsInvariantViolations) {
  // A property that leaves a registered invariant violated at quiesce is a
  // failing run even when it returns normally.
  torture::invariant_registration reg;
  bool broken = false;
  reg.add("selftest-balance", [&broken]() -> std::optional<std::string> {
    if (broken) return "balance off by one";
    return std::nullopt;
  });
  auto ok = torture::run_one(1, [&](std::uint64_t) { broken = false; });
  EXPECT_FALSE(ok.has_value()) << *ok;
  auto bad = torture::run_one(2, [&](std::uint64_t) { broken = true; });
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("selftest-balance"), std::string::npos);
}

// ---- seed sweeps over the LCO suites ------------------------------------

TEST(TortureSched, FutureChainsSurvivePerturbedSchedules) {
  auto r = torture::forall_seeds(torture::seed_count(4), [](std::uint64_t) {
    px::runtime rt(small_pool());
    std::vector<px::future<int>> fs;
    fs.reserve(64);
    for (int i = 0; i < 64; ++i)
      fs.push_back(px::async_on(rt, [i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
      if (fs[static_cast<std::size_t>(i)].get() != i * i)
        throw std::runtime_error("future returned the wrong value");
    rt.wait_quiescent();
  });
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureSched, ChannelFifoHoldsUnderPerturbedSchedules) {
  auto r = torture::forall_seeds(torture::seed_count(4), [](std::uint64_t) {
    px::runtime rt(small_pool());
    px::channel<int> ch;
    std::atomic<int> next{0};
    rt.post([&] {
      for (int i = 0; i < 200; ++i) ch.send(i);
    });
    rt.post([&] {
      for (int i = 0; i < 200; ++i) {
        int const v = ch.get();
        if (v != next.fetch_add(1))
          throw std::runtime_error("channel broke FIFO order");
      }
    });
    rt.wait_quiescent();
    if (next.load() != 200) throw std::runtime_error("channel lost values");
  });
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

TEST(TortureSched, LatchAndYieldStormStaysBalanced) {
  auto r = torture::forall_seeds(torture::seed_count(4), [](std::uint64_t) {
    px::runtime rt(small_pool());
    px::latch gate(8);
    std::atomic<int> released{0};
    for (int i = 0; i < 8; ++i)
      rt.post([&] {
        for (int y = 0; y < 16; ++y) px::this_task::yield();
        gate.arrive_and_wait();
        released.fetch_add(1);
      });
    rt.wait_quiescent();
    if (released.load() != 8) throw std::runtime_error("latch lost waiters");
  });
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

}  // namespace
