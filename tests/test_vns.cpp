// Tests for the Virtual Node Scheme layout: index mapping, encode/decode
// round trips, and seam (halo) construction.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "px/simd/simd.hpp"

namespace {

using px::simd::pack;
namespace vns = px::simd::vns;

TEST(Vns, IndexMapping) {
  // nv = 4 packs, W lanes: x = l*nv + j.
  constexpr std::size_t nv = 4;
  EXPECT_EQ(vns::lane_of(0, nv), 0u);
  EXPECT_EQ(vns::slot_of(0, nv), 0u);
  EXPECT_EQ(vns::lane_of(3, nv), 0u);
  EXPECT_EQ(vns::slot_of(3, nv), 3u);
  EXPECT_EQ(vns::lane_of(4, nv), 1u);
  EXPECT_EQ(vns::slot_of(4, nv), 0u);
  EXPECT_EQ(vns::lane_of(11, nv), 2u);
  EXPECT_EQ(vns::slot_of(11, nv), 3u);
}

template <typename T, std::size_t W>
void roundtrip_case(std::size_t nv) {
  std::vector<T> src(W * nv);
  std::iota(src.begin(), src.end(), T(1));
  std::vector<pack<T, W>> packs(nv);
  vns::encode<T, W>(std::span<T const>(src), packs.data(), nv);

  // Check the defining property P[j][l] == s[l*nv + j].
  for (std::size_t j = 0; j < nv; ++j)
    for (std::size_t l = 0; l < W; ++l)
      ASSERT_EQ(packs[j][l], src[l * nv + j]);

  std::vector<T> back(W * nv, T(0));
  vns::decode<T, W>(packs.data(), std::span<T>(back), nv);
  EXPECT_EQ(back, src);
}

TEST(Vns, EncodeDecodeRoundtripFloatW4) { roundtrip_case<float, 4>(8); }
TEST(Vns, EncodeDecodeRoundtripFloatW8) { roundtrip_case<float, 8>(5); }
TEST(Vns, EncodeDecodeRoundtripDoubleW2) { roundtrip_case<double, 2>(16); }
TEST(Vns, EncodeDecodeRoundtripDoubleW8) { roundtrip_case<double, 8>(3); }
TEST(Vns, EncodeDecodeSingleSlot) { roundtrip_case<float, 4>(1); }

TEST(Vns, LeftSeamProvidesLeftNeighboursOfSlotZero) {
  // Row s[0..W*nv), packs P. The left neighbour of scalar x = l*nv is
  // s[l*nv - 1]; for lane 0 it is the ghost.
  constexpr std::size_t W = 4, nv = 4;
  std::vector<float> src(W * nv);
  std::iota(src.begin(), src.end(), 0.0f);
  std::vector<pack<float, W>> P(nv);
  vns::encode<float, W>(std::span<float const>(src), P.data(), nv);

  float const ghost = -7.0f;
  auto seam = vns::left_seam(P[nv - 1], ghost);
  EXPECT_EQ(seam[0], ghost);
  for (std::size_t l = 1; l < W; ++l)
    EXPECT_EQ(seam[l], src[l * nv - 1]) << "lane " << l;
}

TEST(Vns, RightSeamProvidesRightNeighboursOfLastSlot) {
  // The right neighbour of scalar x = l*nv + (nv-1) is s[(l+1)*nv]; for
  // the last lane it is the ghost.
  constexpr std::size_t W = 4, nv = 5;
  std::vector<double> src(W * nv);
  std::iota(src.begin(), src.end(), 0.0);
  std::vector<pack<double, W>> P(nv);
  vns::encode<double, W>(std::span<double const>(src), P.data(), nv);

  double const ghost = 123.0;
  auto seam = vns::right_seam(P[0], ghost);
  EXPECT_EQ(seam[W - 1], ghost);
  for (std::size_t l = 0; l + 1 < W; ++l)
    EXPECT_EQ(seam[l], src[(l + 1) * nv]) << "lane " << l;
}

TEST(Vns, ThreePointStencilViaPackNeighboursMatchesScalar) {
  // Full property check: a 3-point stencil computed in VNS layout equals
  // the scalar stencil. This is the exact structure of the 2D kernel's
  // x-direction neighbours.
  constexpr std::size_t W = 8, nv = 6, n = W * nv;
  std::vector<double> src(n);
  for (std::size_t i = 0; i < n; ++i)
    src[i] = std::sin(0.1 * static_cast<double>(i));
  double const gl = -1.5, gr = 2.5;  // row ghosts

  // Scalar reference.
  std::vector<double> expect(n);
  for (std::size_t x = 0; x < n; ++x) {
    double const left = x == 0 ? gl : src[x - 1];
    double const right = x == n - 1 ? gr : src[x + 1];
    expect[x] = 0.25 * (left + right) + 0.5 * src[x];
  }

  // VNS computation.
  std::vector<pack<double, W>> P(nv), out(nv);
  vns::encode<double, W>(std::span<double const>(src), P.data(), nv);
  auto const lseam = vns::left_seam(P[nv - 1], gl);
  auto const rseam = vns::right_seam(P[0], gr);
  for (std::size_t j = 0; j < nv; ++j) {
    auto const left = j == 0 ? lseam : P[j - 1];
    auto const right = j == nv - 1 ? rseam : P[j + 1];
    out[j] = (left + right) * pack<double, W>(0.25) +
             P[j] * pack<double, W>(0.5);
  }
  std::vector<double> got(n);
  vns::decode<double, W>(out.data(), std::span<double>(got), nv);

  for (std::size_t x = 0; x < n; ++x)
    ASSERT_DOUBLE_EQ(got[x], expect[x]) << "x=" << x;
}

}  // namespace
