// Tests for the real STREAM kernels running on the px runtime (small
// arrays — this validates the code path and verification, not bandwidth).
#include <gtest/gtest.h>

#include "px/arch/stream_bench.hpp"

namespace {

px::scheduler_config cfg2() {
  px::scheduler_config c;
  c.num_workers = 2;
  return c;
}

TEST(StreamBench, RunsAllFourKernelsVerified) {
  px::runtime rt(cfg2());
  px::arch::stream_config cfg;
  cfg.array_elements = 1 << 16;
  cfg.repetitions = 3;
  auto results = px::arch::run_stream(rt, cfg);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].kernel, "copy");
  EXPECT_EQ(results[1].kernel, "scale");
  EXPECT_EQ(results[2].kernel, "add");
  EXPECT_EQ(results[3].kernel, "triad");
  for (auto const& r : results) {
    EXPECT_TRUE(r.verified) << r.kernel;
    EXPECT_GT(r.best_gbs, 0.0) << r.kernel;
    EXPECT_GE(r.best_gbs, r.avg_gbs * 0.999) << r.kernel;
  }
}

TEST(StreamBench, CopyBandwidthHelper) {
  px::runtime rt(cfg2());
  px::arch::stream_config cfg;
  cfg.array_elements = 1 << 15;
  cfg.repetitions = 2;
  EXPECT_GT(px::arch::measure_copy_bandwidth_gbs(rt, cfg), 0.0);
}

TEST(StreamBench, CoreLimitedRunWorks) {
  px::runtime rt(cfg2());
  px::arch::stream_config cfg;
  cfg.array_elements = 1 << 14;
  cfg.repetitions = 2;
  cfg.cores = 1;
  auto results = px::arch::run_stream(rt, cfg);
  for (auto const& r : results) EXPECT_TRUE(r.verified);
}

}  // namespace
