// Tests for AGAS: GID semantics, the per-locality registry, symbolic names.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "px/agas/gid.hpp"
#include "px/agas/registry.hpp"
#include "px/serial/archive.hpp"

namespace {

using px::agas::gid;
using px::agas::invalid_gid;
using px::agas::registry;

TEST(Gid, InvalidByDefault) {
  gid g;
  EXPECT_FALSE(g.valid());
  EXPECT_EQ(g, invalid_gid);
}

TEST(Gid, EncodesLocalityAndId) {
  gid g = gid::make(7, 12345);
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.locality(), 7u);
  EXPECT_EQ(g.birthplace(), 7u);
  EXPECT_EQ(g.id(), 12345u);
}

TEST(Gid, MigrationUpdatesResidenceNotIdentity) {
  gid g = gid::make(1, 99);
  gid moved = g.with_locality(4);
  EXPECT_EQ(moved.locality(), 4u);
  EXPECT_EQ(moved.birthplace(), 1u);  // birthplace is stable
  EXPECT_EQ(moved.id(), 99u);
  EXPECT_NE(moved, g);
}

TEST(Gid, OrderingAndHash) {
  gid a = gid::make(0, 1), b = gid::make(0, 2), c = gid::make(1, 1);
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<gid>{}(a), std::hash<gid>{}(b));
  std::set<gid> s{a, b, c};
  EXPECT_EQ(s.size(), 3u);
}

TEST(Gid, SerializationRoundtrip) {
  gid g = gid::make(3, 0xabcdef);
  auto bytes = px::serial::to_bytes(g);
  auto back = px::serial::from_bytes<gid>(
      std::span<std::byte const>(bytes.data(), bytes.size()));
  EXPECT_EQ(back, g);
}

TEST(Gid, ToStringIsStable) {
  gid g = gid::make(2, 255);
  EXPECT_EQ(g.to_string(), "{00000002.00000002:00000000000000ff}");
}

TEST(Registry, BindResolveUnbind) {
  registry reg(0);
  auto obj = std::make_shared<int>(41);
  gid g = reg.bind(obj);
  EXPECT_TRUE(g.valid());
  EXPECT_TRUE(reg.contains(g));
  auto resolved = reg.resolve<int>(g);
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(*resolved, 41);
  EXPECT_TRUE(reg.unbind(g));
  EXPECT_FALSE(reg.contains(g));
  EXPECT_EQ(reg.resolve<int>(g), nullptr);
  EXPECT_FALSE(reg.unbind(g));
}

TEST(Registry, TypeSafetyOnResolve) {
  registry reg(0);
  gid g = reg.bind(std::make_shared<int>(1));
  EXPECT_EQ(reg.resolve<double>(g), nullptr);  // wrong type
  EXPECT_NE(reg.resolve<int>(g), nullptr);
}

TEST(Registry, GidsAreUniqueAndResidentHere) {
  registry reg(5);
  std::set<gid> seen;
  for (int i = 0; i < 100; ++i) {
    gid g = reg.new_gid();
    EXPECT_EQ(g.locality(), 5u);
    EXPECT_TRUE(seen.insert(g).second);
  }
}

TEST(Registry, BindExistingForMigrationArrival) {
  registry reg(2);
  gid foreign = gid::make(0, 7).with_locality(2);
  reg.bind_existing(foreign, std::make_shared<std::string>("moved"));
  auto s = reg.resolve<std::string>(foreign);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, "moved");
}

TEST(Registry, SymbolicNames) {
  registry reg(0);
  gid g = reg.bind(std::make_shared<int>(9));
  EXPECT_TRUE(reg.register_name("answer", g));
  EXPECT_FALSE(reg.register_name("answer", g));  // duplicate
  EXPECT_EQ(reg.resolve_name("answer"), g);
  EXPECT_EQ(reg.resolve_name("missing"), invalid_gid);
  EXPECT_TRUE(reg.unregister_name("answer"));
  EXPECT_EQ(reg.resolve_name("answer"), invalid_gid);
}

TEST(Registry, SharedOwnershipKeepsObjectAlive) {
  registry reg(0);
  std::weak_ptr<int> weak;
  gid g;
  {
    auto obj = std::make_shared<int>(3);
    weak = obj;
    g = reg.bind(std::move(obj));
  }
  EXPECT_FALSE(weak.expired());  // registry holds it
  reg.unbind(g);
  EXPECT_TRUE(weak.expired());
}

TEST(Registry, SizeTracksBindings) {
  registry reg(0);
  EXPECT_EQ(reg.size(), 0u);
  gid a = reg.bind(std::make_shared<int>(1));
  gid b = reg.bind(std::make_shared<int>(2));
  EXPECT_EQ(reg.size(), 2u);
  reg.unbind(a);
  EXPECT_EQ(reg.size(), 1u);
  reg.unbind(b);
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
