// Cross-cutting coverage: cases the per-module suites leave out — explicit
// scheduler targets for continuations, deep stacks, SIMD comparison masks,
// policy/executor combinations on the numeric algorithms, cross-locality
// concurrent traffic, and fabric accounting arithmetic.
#include <gtest/gtest.h>

#include <numeric>

#include "px/dist/distributed_domain.hpp"
#include "px/px.hpp"
#include "px/simd/simd.hpp"

namespace {

long chain_self(px::dist::locality& here, int depth) {
  if (depth == 0) return 1;
  return 1 + here.call<&chain_self>(here.id(), depth - 1).get();
}

std::vector<double> scale_vec(std::vector<double> v, double f) {
  for (auto& x : v) x *= f;
  return v;
}

}  // namespace

PX_REGISTER_ACTION(chain_self)
PX_REGISTER_ACTION(scale_vec)

namespace {

px::scheduler_config wcfg(std::size_t w) {
  px::scheduler_config c;
  c.num_workers = w;
  return c;
}

// ---- futures: explicit scheduler targets -----------------------------------

TEST(CoverageFutures, ThenOnExplicitSchedulerFromExternalThread) {
  px::runtime rt(wcfg(2));
  auto f = px::async_on(rt, [] { return 20; });
  // then() needs an ambient worker; then_on works from anywhere.
  auto g = f.then_on(rt.sched(), [](px::future<int> x) {
    return x.get() * 2 + 2;
  });
  EXPECT_EQ(g.get(), 42);
}

TEST(CoverageFutures, DataflowOnExplicitScheduler) {
  px::runtime a(wcfg(2)), b(wcfg(2));
  // Inputs produced on runtime a, combined on runtime b.
  auto x = px::async_on(a, [] { return 30; });
  auto y = px::async_on(a, [] { return 12; });
  auto sum = px::dataflow_on(
      b.sched(),
      [](px::future<int> p, px::future<int> q) { return p.get() + q.get(); },
      std::move(x), std::move(y));
  EXPECT_EQ(sum.get(), 42);
}

TEST(CoverageFutures, SharedFutureWaitFromExternalThread) {
  px::runtime rt(wcfg(2));
  px::promise<int> p;
  px::shared_future<int> sf = p.get_future().share();
  std::thread setter([&p] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    p.set_value(9);
  });
  sf.wait();
  EXPECT_EQ(sf.get(), 9);
  setter.join();
}

// ---- scheduler: stack size config ------------------------------------------

TEST(CoverageScheduler, LargeStacksSupportDeepRecursion) {
  px::scheduler_config c;
  c.num_workers = 1;
  c.stack_size = 1024 * 1024;  // 1 MiB
  px::runtime rt(c);
  // ~600 KiB of live stack across the recursion; would overflow the
  // default 128 KiB stacks.
  std::function<long(int)> deep = [&](int n) -> long {
    volatile char pad[4096];
    pad[0] = static_cast<char>(n);
    if (n == 0) return pad[0];
    return deep(n - 1) + 1;
  };
  long r = px::sync_wait(rt, [&] { return deep(150); });
  EXPECT_EQ(r, 150);
}

// ---- SIMD: comparison masks -------------------------------------------------

TEST(CoverageSimd, ComparisonMasksAreAllOnesOrZero) {
  using pk = px::simd::pack<float, 4>;
  pk a(1.0f), b(1.0f), c(2.0f);
  auto eq = cmp_eq(a, b);
  auto lt = cmp_lt(a, c);
  auto le = cmp_le(c, a);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(eq[l], -1);  // all-ones lane
    EXPECT_EQ(lt[l], -1);
    EXPECT_EQ(le[l], 0);
  }
}

TEST(CoverageSimd, SelectWithMixedMask) {
  using pk = px::simd::pack<double, 4>;
  pk a, b;
  for (std::size_t l = 0; l < 4; ++l) {
    a.set(l, static_cast<double>(l));
    b.set(l, 10.0 + static_cast<double>(l));
  }
  auto m = cmp_lt(a, pk(2.0));  // lanes 0,1 true
  auto sel = px::simd::select(m, a, b);
  EXPECT_DOUBLE_EQ(sel[0], 0.0);
  EXPECT_DOUBLE_EQ(sel[1], 1.0);
  EXPECT_DOUBLE_EQ(sel[2], 12.0);
  EXPECT_DOUBLE_EQ(sel[3], 13.0);
}

TEST(CoverageSimd, UnaryNegation) {
  using pk = px::simd::pack<double, 2>;
  pk a;
  a.set(0, 3.0);
  a.set(1, -4.0);
  auto n = -a;
  EXPECT_DOUBLE_EQ(n[0], -3.0);
  EXPECT_DOUBLE_EQ(n[1], 4.0);
}

// ---- numeric algorithms on executors ----------------------------------------

TEST(CoverageParallel, ScanOnBlockExecutor) {
  px::runtime rt(wcfg(3));
  px::block_executor ex(rt.sched());
  std::vector<long> v(5000, 1), out(5000);
  px::sync_wait(rt, [&] {
    px::parallel::inclusive_scan(px::execution::par.on(ex), v.begin(),
                                 v.end(), out.begin(), 0L, std::plus<>{});
    return 0;
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<long>(i + 1));
}

TEST(CoverageParallel, SortOnLimitingExecutor) {
  px::runtime rt(wcfg(4));
  px::limiting_executor ex(rt.sched(), 2);
  std::vector<int> v(30000);
  px::xoshiro256ss rng(4);
  for (auto& x : v) x = static_cast<int>(rng.below(1u << 24));
  px::sync_wait(rt, [&] {
    px::parallel::sort(px::execution::par.on(ex), v.begin(), v.end());
    return 0;
  });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(CoverageParallel, ReduceEmptyRangeReturnsInit) {
  px::runtime rt(wcfg(2));
  std::vector<int> v;
  int r = px::sync_wait(rt, [&] {
    return px::parallel::reduce(px::execution::par, v.begin(), v.end(), 7,
                                std::plus<>{});
  });
  EXPECT_EQ(r, 7);
}

TEST(CoverageParallel, TransformReduceEmptyRange) {
  px::runtime rt(wcfg(2));
  std::vector<int> v;
  double r = px::sync_wait(rt, [&] {
    return px::parallel::transform_reduce(px::execution::par, v.begin(),
                                          v.end(), 1.5, std::plus<>{},
                                          [](int x) { return double(x); });
  });
  EXPECT_DOUBLE_EQ(r, 1.5);
}

// ---- distributed: concurrent cross traffic ----------------------------------

TEST(CoverageDist, ConcurrentCallsFromEveryLocality) {
  px::dist::domain_config cfg;
  cfg.num_localities = 4;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0005;
  px::dist::distributed_domain dom(cfg);

  double total = dom.run([&](px::dist::locality& loc0) {
    // Every locality simultaneously bombards every other with work.
    std::vector<px::future<double>> roots;
    for (std::size_t src = 0; src < dom.size(); ++src) {
      auto& from = dom.at(src);
      roots.push_back(px::async_on(from.rt(), [&from, &dom] {
        double acc = 0;
        std::vector<px::future<std::vector<double>>> futs;
        for (std::size_t dst = 0; dst < dom.size(); ++dst)
          futs.push_back(from.call<&scale_vec>(
              static_cast<std::uint32_t>(dst),
              std::vector<double>{1, 2, 3}, 2.0));
        for (auto& f : futs) {
          auto v = f.get();
          acc += std::accumulate(v.begin(), v.end(), 0.0);
        }
        return acc;
      }));
    }
    double sum = 0;
    for (auto& f : roots) sum += f.get();
    return sum;
  });
  // 16 calls x sum(2,4,6) = 16 x 12.
  EXPECT_DOUBLE_EQ(total, 192.0);
}

TEST(CoverageDist, DeepSelfCallChain) {
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  px::dist::distributed_domain dom(cfg);
  long depth = dom.run([](px::dist::locality& loc0) {
    return loc0.call<&chain_self>(1, 40).get();
  });
  EXPECT_EQ(depth, 41);
}

TEST(CoverageDist, FabricBytesScaleWithTraffic) {
  auto run_steps = [](std::size_t reps) {
    px::dist::domain_config cfg;
    cfg.num_localities = 2;
    cfg.locality_cfg.num_workers = 1;
    cfg.injection_scale = 0.0;
    px::dist::distributed_domain dom(cfg);
    dom.run([&](px::dist::locality& loc0) {
      for (std::size_t i = 0; i < reps; ++i)
        loc0.call<&scale_vec>(1, std::vector<double>(64, 1.0), 1.0).get();
      return 0;
    });
    dom.wait_all_quiescent();
    return dom.fabric().counters().bytes.load();
  };
  auto const b1 = run_steps(5);
  auto const b2 = run_steps(10);
  EXPECT_NEAR(static_cast<double>(b2) / static_cast<double>(b1), 2.0,
              0.05);
}

// ---- env: config integration -----------------------------------------------

TEST(CoverageEnv, StackSizeFromEnvIsApplied) {
  ::setenv("PX_WORKERS", "1", 1);
  ::setenv("PX_STACK_SIZE", "1048576", 1);
  px::runtime rt(px::scheduler_config::from_env());
  ::unsetenv("PX_WORKERS");
  ::unsetenv("PX_STACK_SIZE");
  EXPECT_EQ(rt.sched().config().stack_size, 1048576u);
  EXPECT_EQ(rt.sched().stacks().stack_size(), 1048576u);
}

}  // namespace
