// Tests for the perf_event_open wrapper. Containers frequently deny the
// syscall, so the contract under test is graceful degradation plus sane
// values when counters do open.
#include <gtest/gtest.h>

#include "px/arch/perf_counters.hpp"

namespace {

using namespace px::arch;

TEST(PerfCounters, NamesAreStable) {
  EXPECT_EQ(to_string(perf_event::instructions), "instructions");
  EXPECT_EQ(to_string(perf_event::cycles), "cycles");
  EXPECT_EQ(to_string(perf_event::cache_misses), "cache-misses");
  EXPECT_EQ(to_string(perf_event::stalled_cycles_backend),
            "stalled-cycles-backend");
}

TEST(PerfCounters, OpensOrDegradesGracefully) {
  perf_counter_set counters({perf_event::instructions, perf_event::cycles});
  if (!counters.available()) {
    GTEST_SKIP() << "perf_event_open not permitted in this environment";
  }
  counters.start();
  volatile double acc = 0;
  for (int i = 0; i < 2000000; ++i) acc = acc + 1.0;
  counters.stop();
  auto instr = counters.value(perf_event::instructions);
  if (counters.available(perf_event::instructions)) {
    ASSERT_TRUE(instr.has_value());
    // The loop retires at least a few million instructions.
    EXPECT_GT(*instr, 1000000u);
  }
}

TEST(PerfCounters, UnavailableEventReturnsNullopt) {
  perf_counter_set counters({perf_event::instructions});
  EXPECT_FALSE(counters.value(perf_event::cache_misses).has_value());
}

TEST(PerfCounters, StartStopWithoutCountersIsSafe) {
  perf_counter_set counters({});
  EXPECT_FALSE(counters.available());
  counters.start();
  counters.stop();
  SUCCEED();
}

}  // namespace
