// Tests for the fully distributed 1D heat solver on virtual localities:
// exact agreement with the serial reference across locality counts and
// fabric models, halo-message accounting, latency injection.
#include <gtest/gtest.h>

#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/stencil/reference.hpp"

namespace {

using namespace px::stencil;

px::dist::domain_config domain_cfg(std::size_t localities,
                                   double injection = 0.001) {
  px::dist::domain_config cfg;
  cfg.num_localities = localities;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = injection;
  return cfg;
}

class DistHeatLocalities : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistHeatLocalities, MatchesSerialReferenceExactly) {
  std::size_t const nloc = GetParam();
  px::dist::distributed_domain dom(domain_cfg(nloc));
  auto initial = heat1d_sine_initial(1003);  // ragged blocks
  dist_heat_config cfg;
  cfg.steps = 25;
  cfg.k = 0.25;
  auto result = run_distributed_heat1d(dom, initial, cfg);
  auto ref = reference_heat1d(initial, cfg.steps, cfg.k);
  ASSERT_EQ(result.values.size(), ref.size());
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13)
      << nloc << " localities";
}

INSTANTIATE_TEST_SUITE_P(Localities, DistHeatLocalities,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(DistHeat, HaloMessageCountMatchesTopology) {
  // A 1D chain of L localities exchanges 2(L-1) halo parcels per step.
  constexpr std::size_t nloc = 4, steps = 10;
  px::dist::distributed_domain dom(domain_cfg(nloc, 0.0));
  auto initial = heat1d_sine_initial(400);
  dist_heat_config cfg;
  cfg.steps = steps;
  auto result = run_distributed_heat1d(dom, initial, cfg);
  // Plus setup/teardown/scatter control parcels; halo traffic dominates
  // and is at least the topological minimum.
  EXPECT_GE(result.halo_messages, 2 * (nloc - 1) * steps);
}

TEST(DistHeat, VisibleNetworkLatencyStillCorrect) {
  // Large injected latency exercises the suspension path hard: edges wait
  // on halos while interiors compute.
  px::dist::distributed_domain dom(domain_cfg(3, /*injection=*/50.0));
  auto initial = heat1d_sine_initial(300);
  dist_heat_config cfg;
  cfg.steps = 8;
  auto result = run_distributed_heat1d(dom, initial, cfg);
  auto ref = reference_heat1d(initial, cfg.steps, cfg.k);
  EXPECT_LT(max_abs_diff(result.values, ref), 1e-13);
}

TEST(DistHeat, WeakNicModelAccumulatesMoreModeledTime) {
  auto run_with = [](px::net::fabric_model fm) {
    auto cfg = domain_cfg(3, 0.0);
    cfg.fabric = fm;
    px::dist::distributed_domain dom(cfg);
    auto initial = heat1d_sine_initial(300);
    dist_heat_config hc;
    hc.steps = 10;
    (void)run_distributed_heat1d(dom, initial, hc);
    return dom.fabric().counters().modeled_us();
  };
  double const ib = run_with(px::net::infiniband_edr());
  double const weak = run_with(px::net::hi1616_nic());
  EXPECT_GT(weak, 2.0 * ib);  // the Kunpeng story in the fabric numbers
}

TEST(DistHeat, AnalyticDecayAcrossLocalities) {
  px::dist::distributed_domain dom(domain_cfg(4));
  constexpr std::size_t nx = 2001;
  auto initial = heat1d_sine_initial(nx);
  dist_heat_config cfg;
  cfg.steps = 100;
  auto result = run_distributed_heat1d(dom, initial, cfg);
  auto analytic = analytic_heat1d_sine(nx, cfg.steps, cfg.k);
  EXPECT_LT(max_abs_diff(result.values, analytic), 1e-10);
}

TEST(DistHeat, BackToBackSolvesOnOneDomain) {
  // The prepare/teardown cycle must leave localities reusable.
  px::dist::distributed_domain dom(domain_cfg(2));
  auto initial = heat1d_sine_initial(200);
  dist_heat_config cfg;
  cfg.steps = 5;
  auto r1 = run_distributed_heat1d(dom, initial, cfg);
  auto r2 = run_distributed_heat1d(dom, initial, cfg);
  EXPECT_LT(max_abs_diff(r1.values, r2.values), 1e-15);
}

}  // namespace
