// Tests for px::simd::pack across lane types and widths (typed test suite),
// checking every operation against scalar reference math.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "px/simd/simd.hpp"

namespace {

using px::simd::pack;

template <typename P>
class PackTest : public ::testing::Test {};

using PackTypes =
    ::testing::Types<pack<float, 4>, pack<float, 8>, pack<float, 16>,
                     pack<double, 2>, pack<double, 4>, pack<double, 8>,
                     pack<int, 4>, pack<int, 8>>;
TYPED_TEST_SUITE(PackTest, PackTypes);

template <typename P>
P iota_pack(typename P::value_type start = 1) {
  P p;
  for (std::size_t l = 0; l < P::width; ++l)
    p.set(l, static_cast<typename P::value_type>(start +
                                                 typename P::value_type(l)));
  return p;
}

TYPED_TEST(PackTest, BroadcastFillsAllLanes) {
  TypeParam p(typename TypeParam::value_type(3));
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(p[l], typename TypeParam::value_type(3));
}

TYPED_TEST(PackTest, ElementwiseArithmetic) {
  auto a = iota_pack<TypeParam>(1);
  auto b = iota_pack<TypeParam>(10);
  auto sum = a + b;
  auto diff = b - a;
  auto prod = a * b;
  for (std::size_t l = 0; l < TypeParam::width; ++l) {
    EXPECT_EQ(sum[l], a[l] + b[l]);
    EXPECT_EQ(diff[l], b[l] - a[l]);
    EXPECT_EQ(prod[l], a[l] * b[l]);
  }
}

TYPED_TEST(PackTest, CompoundAssignment) {
  auto a = iota_pack<TypeParam>(1);
  auto b = a;
  b += a;
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(b[l], a[l] + a[l]);
  b -= a;
  for (std::size_t l = 0; l < TypeParam::width; ++l) EXPECT_EQ(b[l], a[l]);
  b *= a;
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(b[l], a[l] * a[l]);
}

TYPED_TEST(PackTest, MinMaxAbs) {
  auto a = iota_pack<TypeParam>(1);
  auto b = iota_pack<TypeParam>(typename TypeParam::value_type(
      -static_cast<int>(TypeParam::width)));
  auto mn = px::simd::min(a, b);
  auto mx = px::simd::max(a, b);
  auto ab = px::simd::abs(b);
  for (std::size_t l = 0; l < TypeParam::width; ++l) {
    EXPECT_EQ(mn[l], std::min(a[l], b[l]));
    EXPECT_EQ(mx[l], std::max(a[l], b[l]));
    EXPECT_EQ(ab[l], b[l] < 0 ? -b[l] : b[l]);
  }
}

TYPED_TEST(PackTest, ReduceAdd) {
  auto a = iota_pack<TypeParam>(1);
  typename TypeParam::value_type expect{};
  for (std::size_t l = 0; l < TypeParam::width; ++l) expect += a[l];
  EXPECT_EQ(px::simd::reduce_add(a), expect);
}

TYPED_TEST(PackTest, ReduceMinMax) {
  auto a = iota_pack<TypeParam>(5);
  EXPECT_EQ(px::simd::reduce_min(a), a[0]);
  EXPECT_EQ(px::simd::reduce_max(a), a[TypeParam::width - 1]);
}

TYPED_TEST(PackTest, LoadStoreUnaligned) {
  std::vector<typename TypeParam::value_type> buf(TypeParam::width + 1);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<typename TypeParam::value_type>(i);
  // Deliberately offset by one element to exercise the unaligned path.
  auto p = px::simd::load_unaligned<TypeParam>(buf.data() + 1);
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(p[l], buf[l + 1]);
  std::vector<typename TypeParam::value_type> out(TypeParam::width + 1);
  px::simd::store_unaligned(out.data() + 1, p);
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(out[l + 1], buf[l + 1]);
}

TYPED_TEST(PackTest, LoadStoreAligned) {
  std::vector<typename TypeParam::value_type,
              px::aligned_allocator<typename TypeParam::value_type,
                                    TypeParam::alignment>>
      buf(TypeParam::width);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<typename TypeParam::value_type>(i + 2);
  auto p = px::simd::load_aligned<TypeParam>(buf.data());
  px::simd::store_aligned(buf.data(), p + p);
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(buf[l], static_cast<typename TypeParam::value_type>(2 * (l + 2)));
}

TYPED_TEST(PackTest, RotateUpDown) {
  auto a = iota_pack<TypeParam>(0);
  auto up = px::simd::rotate_up(a);
  auto down = px::simd::rotate_down(a);
  constexpr std::size_t w = TypeParam::width;
  for (std::size_t l = 0; l < w; ++l) {
    EXPECT_EQ(up[l], a[(l + w - 1) % w]) << "lane " << l;
    EXPECT_EQ(down[l], a[(l + 1) % w]) << "lane " << l;
  }
}

TYPED_TEST(PackTest, ShiftInsert) {
  auto a = iota_pack<TypeParam>(0);
  auto const carry = typename TypeParam::value_type(99);
  auto up = px::simd::shift_up_insert(a, carry);
  auto down = px::simd::shift_down_insert(a, carry);
  constexpr std::size_t w = TypeParam::width;
  EXPECT_EQ(up[0], carry);
  for (std::size_t l = 1; l < w; ++l) EXPECT_EQ(up[l], a[l - 1]);
  EXPECT_EQ(down[w - 1], carry);
  for (std::size_t l = 0; l + 1 < w; ++l) EXPECT_EQ(down[l], a[l + 1]);
  EXPECT_EQ(px::simd::first_lane(a), a[0]);
  EXPECT_EQ(px::simd::last_lane(a), a[w - 1]);
}

TYPED_TEST(PackTest, Select) {
  auto a = iota_pack<TypeParam>(0);
  auto b = iota_pack<TypeParam>(100);
  auto mask = cmp_lt(a, TypeParam(typename TypeParam::value_type(
                            TypeParam::width / 2)));
  auto sel = px::simd::select(mask, a, b);
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_EQ(sel[l], l < TypeParam::width / 2 ? a[l] : b[l]);
}

// Floating-point only ops.
template <typename P>
class FloatPackTest : public ::testing::Test {};
using FloatPackTypes = ::testing::Types<pack<float, 4>, pack<float, 8>,
                                        pack<double, 2>, pack<double, 4>,
                                        pack<double, 8>>;
TYPED_TEST_SUITE(FloatPackTest, FloatPackTypes);

TYPED_TEST(FloatPackTest, Division) {
  auto a = iota_pack<TypeParam>(2);
  auto b = iota_pack<TypeParam>(1);
  auto q = a / b;
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_NEAR(static_cast<double>(q[l]),
                static_cast<double>(a[l]) / static_cast<double>(b[l]),
                1e-6);
}

TYPED_TEST(FloatPackTest, SqrtLanewise) {
  auto a = iota_pack<TypeParam>(1);
  auto s = px::simd::sqrt(a * a);
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_NEAR(static_cast<double>(s[l]), static_cast<double>(a[l]), 1e-5);
}

TYPED_TEST(FloatPackTest, FmaMatchesMulAdd) {
  auto a = iota_pack<TypeParam>(1);
  auto b = iota_pack<TypeParam>(2);
  auto c = iota_pack<TypeParam>(3);
  auto f = px::simd::fma(a, b, c);
  for (std::size_t l = 0; l < TypeParam::width; ++l)
    EXPECT_NEAR(static_cast<double>(f[l]),
                static_cast<double>(a[l]) * static_cast<double>(b[l]) +
                    static_cast<double>(c[l]),
                1e-5);
}

TEST(PackTraits, Classification) {
  static_assert(px::simd::is_pack_v<pack<float, 8>>);
  static_assert(!px::simd::is_pack_v<float>);
  static_assert(std::is_same_v<px::simd::get_type_t<pack<double, 4>>,
                               double>);
  static_assert(std::is_same_v<px::simd::get_type_t<double>, double>);
  static_assert(px::simd::lane_count_v<pack<float, 8>> == 8);
  static_assert(px::simd::lane_count_v<float> == 1);
  SUCCEED();
}

TEST(PackAbi, PaperPipelineWidths) {
  // NEON 128-bit: 4 floats / 2 doubles (Kunpeng 916, ThunderX2).
  static_assert(px::simd::abi::neon128<float>::width == 4);
  static_assert(px::simd::abi::neon128<double>::width == 2);
  // AVX2 256-bit: 8 floats / 4 doubles (Xeon E5).
  static_assert(px::simd::abi::avx2<float>::width == 8);
  static_assert(px::simd::abi::avx2<double>::width == 4);
  // SVE 512-bit: 16 floats / 8 doubles (A64FX, -msve-vector-bits=512).
  static_assert(px::simd::abi::sve512<float>::width == 16);
  static_assert(px::simd::abi::sve512<double>::width == 8);
  SUCCEED();
}

TEST(PackAlignment, MatchesVectorSize) {
  using fpack8 = pack<float, 8>;
  using dpack8 = pack<double, 8>;
  using fpack16 = pack<float, 16>;
  EXPECT_EQ(alignof(fpack8), 32u);
  EXPECT_EQ(sizeof(dpack8), 64u);
  EXPECT_EQ(fpack16::alignment, 64u);
}

}  // namespace
