// Resilience tests: locality fail-stop/hang/slow fault schedules, the
// heartbeat failure detector, prompt locality_down failure of in-flight
// calls, incarnation epochs vs. the dedup window, task-level
// replay/replicate, buddy checkpoint/restart recovery of the distributed
// heat solver (bitwise identical to a fault-free run, plain and under a
// 16-seed torture sweep), barrier failure semantics, orphan-response
// exactness, and the checkpoint/restart cluster cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "px/arch/cluster_sim.hpp"
#include "px/counters/counters.hpp"
#include "px/dist/dist_barrier.hpp"
#include "px/dist/remote_channel.hpp"
#include "px/lcos/async.hpp"
#include "px/net/fault_plane.hpp"
#include "px/runtime/runtime.hpp"
#include "px/resilience/checkpoint.hpp"
#include "px/resilience/replay.hpp"
#include "px/stencil/heat1d.hpp"
#include "px/stencil/heat1d_distributed.hpp"
#include "px/torture/forall.hpp"
#include "px/torture/invariant.hpp"

namespace {

std::atomic<int> g_stamp_count{0};
std::atomic<long long> g_stamp_sum{0};

int res_echo(px::dist::locality& here, int x) {
  return static_cast<int>(here.id()) * 100 + x;
}

int res_stamp(px::dist::locality&, int v) {
  g_stamp_count.fetch_add(1, std::memory_order_relaxed);
  g_stamp_sum.fetch_add(v, std::memory_order_relaxed);
  return v;
}

int res_barrier_participant(px::dist::locality& here, std::uint64_t gen) {
  px::dist::barrier_arrive_and_wait(here, gen);
  return static_cast<int>(here.id());
}

}  // namespace

PX_REGISTER_ACTION(res_echo)
PX_REGISTER_ACTION(res_stamp)
PX_REGISTER_ACTION(res_barrier_participant)
PX_REGISTER_REMOTE_CHANNEL(double)

namespace {

using px::counters::builtin;
using namespace std::chrono_literals;

// Polls `pred` until it holds or `deadline_ms` elapses.
bool eventually(int deadline_ms, std::function<bool()> pred) {
  auto const deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ---- locality fault schedules (fault_plane unit) -------------------------

TEST(LocalityFaults, FailStopAtStepBlackholesTraffic) {
  px::net::fault_plane plane;  // no link faults: locality faults still work
  plane.fail_stop_at_step(1, 10);

  // Below the threshold nothing happens.
  plane.advance_step(9);
  auto d = plane.sample(0, 1);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(plane.health(1), px::net::locality_health::alive);

  plane.advance_step(10);
  EXPECT_TRUE(plane.locality_dead(1));
  EXPECT_EQ(plane.stats().locality_faults_triggered, 1u);

  // Frames to and from the victim vanish; unrelated links are untouched.
  d = plane.sample(0, 1);
  EXPECT_TRUE(d.drop);
  EXPECT_TRUE(d.blackholed);
  d = plane.sample(1, 2);
  EXPECT_TRUE(d.drop);
  d = plane.sample(0, 2);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(plane.stats().blackholed, 2u);
}

TEST(LocalityFaults, HangLooksLikeDeathOnTheWireOnly) {
  px::net::fault_plane plane;
  plane.hang_now(3);
  auto const d = plane.sample(3, 0);
  EXPECT_TRUE(d.drop);
  EXPECT_TRUE(d.blackholed);
  // Hung, but not declared dead: detection must happen via silence.
  EXPECT_EQ(plane.health(3), px::net::locality_health::hung);
  EXPECT_FALSE(plane.locality_dead(3));

  plane.revive(3);
  EXPECT_EQ(plane.health(3), px::net::locality_health::alive);
  EXPECT_FALSE(plane.sample(3, 0).drop);
}

TEST(LocalityFaults, SlowByScalesDelayAndReviveClears) {
  px::net::fault_plane plane;
  plane.slow_by(2, 8.0);
  auto d = plane.sample(0, 2);
  EXPECT_FALSE(d.drop);
  EXPECT_DOUBLE_EQ(d.delay_factor, 8.0);
  d = plane.sample(2, 1);  // both directions are slowed
  EXPECT_DOUBLE_EQ(d.delay_factor, 8.0);
  d = plane.sample(0, 1);
  EXPECT_DOUBLE_EQ(d.delay_factor, 1.0);

  plane.revive(2);
  EXPECT_DOUBLE_EQ(plane.sample(0, 2).delay_factor, 1.0);
}

TEST(LocalityFaults, ModeledNsTriggerFires) {
  px::net::fault_plane plane;
  plane.hang_at_modeled_ns(1, 5'000);
  plane.advance_modeled_ns(4'999);
  EXPECT_EQ(plane.health(1), px::net::locality_health::alive);
  plane.advance_modeled_ns(5'000);
  EXPECT_EQ(plane.health(1), px::net::locality_health::hung);
  EXPECT_EQ(plane.stats().locality_faults_triggered, 1u);
}

TEST(LocalityFaults, ReviveDiscardsPendingSchedules) {
  px::net::fault_plane plane;
  plane.fail_stop_at_step(1, 100);
  plane.revive(1);
  plane.advance_step(1'000);  // the discarded schedule must not fire
  EXPECT_EQ(plane.health(1), px::net::locality_health::alive);
  EXPECT_EQ(plane.stats().locality_faults_triggered, 0u);
}

// ---- checkpoint store ----------------------------------------------------

TEST(CheckpointStore, PutGetReplaceAndExactByteCounter) {
  auto const before = builtin().resilience_checkpoint_bytes.load();
  px::resilience::checkpoint_store store;
  std::vector<std::byte> blob(64, std::byte{0xab});
  store.put(3, 10, blob);
  store.put(3, 20, std::vector<std::byte>(32, std::byte{0x01}));
  store.put(3, 10, std::vector<std::byte>(16, std::byte{0x02}));  // replace

  EXPECT_EQ(store.size(), 2u);
  auto got = store.get(3, 10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 16u);  // the replacement won
  EXPECT_FALSE(store.get(3, 30).has_value());
  EXPECT_FALSE(store.get(4, 10).has_value());

  auto const entries = store.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Every byte handed to put() is accounted, replacements included.
  EXPECT_EQ(builtin().resilience_checkpoint_bytes.load() - before,
            64u + 32u + 16u);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

// ---- async_replay --------------------------------------------------------

struct ReplayTest : ::testing::Test {
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 2;
    return c;
  }()};
};

TEST_F(ReplayTest, RecoversFromTransientFaultsWithExactCounter) {
  auto const before = builtin().resilience_replays.load();
  auto flaky_runs = std::make_shared<std::atomic<int>>(0);
  auto f = px::resilience::async_replay_on(rt, 5, [flaky_runs] {
    if (flaky_runs->fetch_add(1) < 2)
      throw std::runtime_error("transient task fault");
    return 42;
  });
  EXPECT_EQ(f.get(), 42);
  EXPECT_EQ(flaky_runs->load(), 3);
  // First attempts are ordinary tasks; only the two re-executions count.
  EXPECT_EQ(builtin().resilience_replays.load() - before, 2u);
}

TEST_F(ReplayTest, FirstTrySuccessCostsNoReplays) {
  auto const before = builtin().resilience_replays.load();
  auto f = px::resilience::async_replay_on(rt, 4, [](int a, int b) {
    return a + b;
  }, 40, 2);
  EXPECT_EQ(f.get(), 42);
  EXPECT_EQ(builtin().resilience_replays.load() - before, 0u);
}

TEST_F(ReplayTest, BudgetExhaustionRethrowsLastFailure) {
  auto const before = builtin().resilience_replays.load();
  auto f = px::resilience::async_replay_on(rt, 3, []() -> int {
    throw std::logic_error("permanent");
  });
  EXPECT_THROW(f.get(), std::logic_error);
  EXPECT_EQ(builtin().resilience_replays.load() - before, 2u);
}

TEST_F(ReplayTest, EachAttemptSeesPristineArguments) {
  // A failed attempt mutates its argument copy; the next attempt must not
  // observe the damage.
  auto attempts = std::make_shared<std::atomic<int>>(0);
  auto f = px::resilience::async_replay_on(
      rt, 3,
      [attempts](std::vector<int> v) {
        v.push_back(0);  // mutate the copy
        if (attempts->fetch_add(1) < 2)
          throw std::runtime_error("try again");
        return v.size();
      },
      std::vector<int>{1, 2, 3});
  EXPECT_EQ(f.get(), 4u);  // 3 originals + exactly one push_back
}

// ---- async_replicate -----------------------------------------------------

TEST_F(ReplayTest, ReplicateOutvotesWrongAnswerReplica) {
  auto const before = builtin().resilience_replicas.load();
  auto order = std::make_shared<std::atomic<int>>(0);
  auto f = px::resilience::async_replicate_on(rt, 3, [order] {
    // Exactly one replica silently computes the wrong answer.
    return order->fetch_add(1) == 0 ? 13 : 42;
  });
  EXPECT_EQ(f.get(), 42);
  EXPECT_EQ(builtin().resilience_replicas.load() - before, 3u);
}

TEST_F(ReplayTest, ReplicateToleratesThrowingReplica) {
  auto order = std::make_shared<std::atomic<int>>(0);
  auto f = px::resilience::async_replicate_on(rt, 3, [order] {
    if (order->fetch_add(1) == 0) throw std::runtime_error("replica died");
    return 7;
  });
  EXPECT_EQ(f.get(), 7);  // 2 survivors agree: strict majority of 3
}

TEST_F(ReplayTest, ReplicateNoMajorityThrows) {
  auto order = std::make_shared<std::atomic<int>>(0);
  auto f = px::resilience::async_replicate_on(rt, 2, [order] {
    return order->fetch_add(1);  // 0 and 1: no strict majority
  });
  EXPECT_THROW(f.get(), px::resilience::replicate_error);
}

TEST_F(ReplayTest, ReplicateAllFailingRethrows) {
  auto f = px::resilience::async_replicate_on(rt, 3, []() -> int {
    throw std::logic_error("all dead");
  });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(ReplayTest, ReplicateVoteUsesCallerValidator) {
  auto const before = builtin().resilience_replicas.load();
  auto order = std::make_shared<std::atomic<int>>(0);
  auto f = px::resilience::async_replicate_vote_on(
      rt, 3, [order] { return order->fetch_add(1) * 10; },
      [](std::vector<int> results) {
        int best = results.front();
        for (int r : results) best = std::max(best, r);
        return best;
      });
  EXPECT_EQ(f.get(), 20);
  EXPECT_EQ(builtin().resilience_replicas.load() - before, 3u);
}

// ---- fiber exception-state migration -------------------------------------

TEST(FiberExceptionState, CatchBlockSurvivesCrossWorkerResume) {
  // Regression for a leak the heat recovery driver exposed: the recovery
  // loop suspends inside its catch handler (awaiting checkpoint fetches
  // while holding the failure it is recovering from), and the resumed fiber
  // may land on a different worker. __cxa_eh_globals lives in per-OS-thread
  // storage, so unless the fiber layer carries it across switches,
  // __cxa_end_catch pops the wrong thread's handler chain:
  // std::current_exception() inside the handler goes stale (or returns some
  // other task's exception) and the in-flight exception is never released.
  px::runtime rt{[] {
    px::scheduler_config c;
    c.num_workers = 4;
    return c;
  }()};
  std::vector<px::future<bool>> checks;
  for (int i = 0; i < 64; ++i) {
    checks.push_back(px::async_on(rt, [i]() -> bool {
      std::string const expected = "payload-" + std::to_string(i);
      try {
        throw std::runtime_error(expected);
      } catch (std::exception const& e) {
        if (expected != e.what()) return false;
        // Bounce between workers while the handler is live.
        for (int k = 0; k < 32; ++k) px::this_task::yield();
        auto const eptr = std::current_exception();
        if (!eptr) return false;  // handler chain lost in the migration
        try {
          std::rethrow_exception(eptr);
        } catch (std::exception const& again) {
          return expected == again.what();  // and not a crossed task's
        } catch (...) {
          return false;
        }
      }
    }));
  }
  for (auto& f : checks) EXPECT_TRUE(f.get());
}

// ---- failure detector ----------------------------------------------------

px::dist::domain_config detector_cfg(std::size_t n) {
  px::dist::domain_config cfg;
  cfg.num_localities = n;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.resilience.enabled = true;
  // Thresholds are wall-clock; keep confirm far above any scheduling or
  // sanitizer-induced heartbeat delay so a healthy-but-slow locality is
  // never falsely confirmed dead, merely (transiently) suspected.
  cfg.resilience.heartbeat_interval_us = 2'000.0;
  cfg.resilience.suspect_after_us = 100'000.0;
  cfg.resilience.confirm_after_us = 600'000.0;
  return cfg;
}

TEST(FailureDetector, HeartbeatsFlowAmongHealthyLocalities) {
  auto const before_hb = builtin().resilience_heartbeats.load();
  auto const before_confirms = builtin().resilience_confirms.load();
  px::dist::distributed_domain dom(detector_cfg(3));
  ASSERT_NE(dom.detector(), nullptr);
  EXPECT_TRUE(eventually(2'000, [&] {
    return builtin().resilience_heartbeats.load() - before_hb >= 12;
  }));
  for (std::uint32_t l = 0; l < 3; ++l) EXPECT_FALSE(dom.is_confirmed_dead(l));
  EXPECT_EQ(builtin().resilience_confirms.load() - before_confirms, 0u);
}

TEST(FailureDetector, SilentLocalityIsSuspectedThenConfirmed) {
  auto const before_suspects = builtin().resilience_suspects.load();
  auto const before_confirms = builtin().resilience_confirms.load();

  px::dist::distributed_domain dom(detector_cfg(3));
  std::atomic<int> suspected{-1};
  std::atomic<int> confirmed{-1};
  dom.detector()->on_suspect(
      [&](std::uint32_t loc) { suspected.store(static_cast<int>(loc)); });
  dom.detector()->on_confirm(
      [&](std::uint32_t loc) { confirmed.store(static_cast<int>(loc)); });

  // A hang is invisible out of band: the wire goes silent but the fault
  // plane does not mark the locality dead, so the only path to a confirm
  // is organic heartbeat silence.
  dom.fabric().faults().hang_now(2);
  ASSERT_TRUE(eventually(5'000, [&] { return dom.is_confirmed_dead(2); }));

  EXPECT_EQ(suspected.load(), 2);
  EXPECT_EQ(confirmed.load(), 2);
  EXPECT_EQ(dom.detector()->state_of(2), px::dist::member_state::dead);
  EXPECT_GE(builtin().resilience_suspects.load() - before_suspects, 1u);
  EXPECT_EQ(builtin().resilience_confirms.load() - before_confirms, 1u);
  EXPECT_FALSE(dom.is_confirmed_dead(0));
  EXPECT_FALSE(dom.is_confirmed_dead(1));
  EXPECT_EQ(dom.confirmed_dead(), std::vector<std::uint32_t>{2});
}

TEST(FailureDetector, InFlightCallFailsPromptlyNotViaRetryBudget) {
  // A call already in flight toward a locality that then fail-stops must
  // surface locality_down as soon as the detector confirms the death —
  // not after the reliability layer burns its (here: enormous) backoff.
  // Three localities so the 0<->2 heartbeat link stays healthy: with only
  // two, hanging locality 1 silences *both* directions of the sole link
  // and the detector would (correctly) confirm both members dead.
  auto cfg = detector_cfg(3);
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  cfg.reliability.initial_backoff_us = 60e6;  // first RTO in a minute
  cfg.reliability.max_backoff_us = 60e6;
  cfg.reliability.max_retries = 1'000;

  px::dist::distributed_domain dom(cfg);
  dom.fabric().faults().hang_now(1);

  auto const t0 = std::chrono::steady_clock::now();
  bool caught = dom.run([](px::dist::locality& loc0) {
    auto f = loc0.call<&res_echo>(1, 5);
    try {
      (void)f.get();
      return false;
    } catch (px::dist::locality_down const& e) {
      return e.which() == 1u;
    }
  });
  auto const elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(caught);
  EXPECT_LT(elapsed, 30s);  // detector-driven, not backoff-driven
  EXPECT_TRUE(dom.is_confirmed_dead(1));
  dom.wait_all_quiescent();  // the drained retransmission must not leak
}

TEST(FailureDetector, ShutdownCancelsHeartbeatTimer) {
  // The armed heartbeat tick must be cancelled before the domain's
  // localities are torn down; the cancelled heap entry later fires as a
  // counted no-op (/px/timer/callbacks_cancelled) that never touches the
  // destroyed domain.
  auto const before = builtin().timer_cancelled.load();
  {
    px::dist::distributed_domain dom(detector_cfg(2));
    std::this_thread::sleep_for(10ms);  // let a few ticks run
  }
  EXPECT_TRUE(eventually(2'000, [&] {
    return builtin().timer_cancelled.load() - before >= 1;
  }));
}

// ---- confirm / restart / epochs ------------------------------------------

TEST(Membership, ConfirmFailureIsIdempotentAndBumpsEpoch) {
  px::dist::domain_config cfg;
  cfg.num_localities = 3;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;

  px::dist::distributed_domain dom(cfg);
  auto const epoch0 = dom.membership_epoch();
  std::atomic<int> hook_fires{0};
  auto const hook_id =
      dom.add_confirm_hook([&](std::uint32_t) { hook_fires.fetch_add(1); });

  dom.confirm_failure(1);
  EXPECT_TRUE(dom.is_confirmed_dead(1));
  EXPECT_EQ(dom.membership_epoch(), epoch0 + 1);
  EXPECT_EQ(hook_fires.load(), 1);
  dom.confirm_failure(1);  // idempotent
  EXPECT_EQ(dom.membership_epoch(), epoch0 + 1);
  EXPECT_EQ(hook_fires.load(), 1);

  dom.restart_locality(1);
  EXPECT_FALSE(dom.is_confirmed_dead(1));
  EXPECT_EQ(dom.incarnation(1), 2u);
  EXPECT_EQ(dom.membership_epoch(), epoch0 + 2);
  dom.remove_confirm_hook(hook_id);
  dom.wait_all_quiescent();
}

TEST(Membership, RestartedSeqsCauseZeroDuplicateDeliveries) {
  // Phase A fills both links' dedup windows with seqs 1..N; the restarted
  // locality's phase-B responses reuse those seqs under a bumped epoch.
  // Without epochs every phase-B response would be suppressed as a
  // duplicate; with them each call executes exactly once.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  cfg.reliability.initial_backoff_us = 5e6;  // no RTO inside the test window:
  cfg.reliability.max_backoff_us = 5e6;      // every dup must come from seqs

  auto const before_dup = builtin().net_dup_suppressed.load();
  auto const stamps0 = g_stamp_count.load();

  px::dist::distributed_domain dom(cfg);
  dom.run([](px::dist::locality& loc0) {
    for (int i = 0; i < 30; ++i)
      EXPECT_EQ(loc0.call<&res_stamp>(1, i).get(), i);
    return 0;
  });
  dom.wait_all_quiescent();  // restart_locality asserts no inflight frames

  dom.confirm_failure(1);
  dom.restart_locality(1);
  EXPECT_EQ(dom.incarnation(1), 2u);

  dom.run([](px::dist::locality& loc0) {
    for (int i = 100; i < 130; ++i)
      EXPECT_EQ(loc0.call<&res_stamp>(1, i).get(), i);
    return 0;
  });
  dom.wait_all_quiescent();

  EXPECT_EQ(g_stamp_count.load() - stamps0, 60);  // exactly once each
  EXPECT_EQ(builtin().net_dup_suppressed.load() - before_dup, 0u);
}

TEST(Membership, StaleEpochStragglersAreCountedAndDropped) {
  // Old-incarnation frames delivered *after* the restarted incarnation's
  // frames reset the window must be dropped and counted — never executed,
  // never deduped into the live window. slow_by keeps the old frames in
  // flight (~50x base delay) across the kill/restart.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 4'000.0;  // base hop ~6 ms of real delay
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  cfg.reliability.initial_backoff_us = 5e6;  // no RTO inside the test window
  cfg.reliability.max_backoff_us = 5e6;

  auto const before_stale = builtin().resilience_stale_epoch_drops.load();
  auto const before_dup = builtin().net_dup_suppressed.load();
  auto const stamps0 = g_stamp_count.load();
  long long const sum0 = g_stamp_sum.load();

  px::dist::distributed_domain dom(cfg);
  dom.fabric().faults().slow_by(1, 50.0);
  for (int i = 0; i < 5; ++i) dom.at(1).apply<&res_stamp>(0, 1'000 + i);

  // Kill and restart while the epoch-1 frames are still in flight.
  dom.confirm_failure(1);
  dom.restart_locality(1);  // revives the wire, bumps the incarnation
  for (int i = 0; i < 5; ++i) dom.at(1).apply<&res_stamp>(0, 2'000 + i);

  dom.wait_all_quiescent();  // drains the slow stragglers too

  // Only the new incarnation's applies executed.
  EXPECT_EQ(g_stamp_count.load() - stamps0, 5);
  EXPECT_EQ(g_stamp_sum.load() - sum0, 2'000ll * 5 + (0 + 1 + 2 + 3 + 4));
  EXPECT_EQ(builtin().resilience_stale_epoch_drops.load() - before_stale, 5u);
  EXPECT_EQ(builtin().net_dup_suppressed.load() - before_dup, 0u);
}

TEST(Membership, OrphanResponsesExactlyMatchKilledCalls) {
  // Responses already in flight when their caller's slots are failed by a
  // confirm must land as counted orphans — exactly one per killed call,
  // and the calls themselves must fail with locality_down.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.faults.extra_delay = 1.0;  // every frame: +100 ms, deterministically
  cfg.faults.extra_delay_us = 100'000.0;
  cfg.reliability.initial_backoff_us = 5e6;  // RTOs far outside the window
  cfg.reliability.max_backoff_us = 5e6;

  auto const before_orphans = builtin().parcel_orphan_responses.load();
  auto const stamps0 = g_stamp_count.load();

  px::dist::distributed_domain dom(cfg);
  std::thread killer([&dom] {
    std::this_thread::sleep_for(150ms);  // requests landed, responses in air
    dom.confirm_failure(1);
  });
  int down = dom.run([](px::dist::locality& loc0) {
    std::vector<px::future<int>> fs;
    for (int i = 0; i < 3; ++i) fs.push_back(loc0.call<&res_stamp>(1, i));
    int n = 0;
    for (auto& f : fs) {
      try {
        (void)f.get();
      } catch (px::dist::locality_down const& e) {
        if (e.which() == 1u) ++n;
      }
    }
    return n;
  });
  killer.join();
  dom.wait_all_quiescent();

  EXPECT_EQ(down, 3);
  EXPECT_EQ(g_stamp_count.load() - stamps0, 3);  // requests did execute
  EXPECT_EQ(builtin().parcel_orphan_responses.load() - before_orphans, 3u);
}

TEST(Membership, SendToConfirmedDeadLocalityFailsFast) {
  // New calls to a confirmed-dead locality must not burn a retry budget:
  // route() fails them immediately with locality_down.
  px::dist::domain_config cfg;
  cfg.num_localities = 2;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;
  cfg.reliability.activation = px::net::reliability_config::mode::on;

  auto const before_fail = builtin().net_delivery_failures.load();
  px::dist::distributed_domain dom(cfg);
  dom.confirm_failure(1);
  bool caught = dom.run([](px::dist::locality& loc0) {
    try {
      (void)loc0.call<&res_echo>(1, 1).get();
      return false;
    } catch (px::dist::locality_down const& e) {
      return e.which() == 1u;
    }
  });
  EXPECT_TRUE(caught);
  EXPECT_GE(builtin().net_delivery_failures.load() - before_fail, 1u);
  dom.wait_all_quiescent();

  // A remote-channel send to the dead locality is likewise a counted,
  // non-blocking drop (the close-race dead-letter path has its own test in
  // test_fault_injection).
  auto const fail2 = builtin().net_delivery_failures.load();
  dom.run([&dom](px::dist::locality& loc0) {
    auto ch = px::dist::remote_channel<double>::create(dom.at(1));
    ch.send(loc0, 2.71);
    return 0;
  });
  dom.wait_all_quiescent();
  EXPECT_GE(builtin().net_delivery_failures.load() - fail2, 1u);
}

// ---- barrier failure semantics -------------------------------------------

TEST(BarrierFailure, KilledParticipantSurfacesToAllWaiters) {
  // Localities 0 and 1 arrive; locality 2 dies without arriving. Both
  // waiters must surface the failure instead of deadlocking.
  px::dist::domain_config cfg;
  cfg.num_localities = 3;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.0;

  px::dist::distributed_domain dom(cfg);
  std::thread killer([&dom] {
    std::this_thread::sleep_for(100ms);  // both waiters are parked by now
    dom.confirm_failure(2);
  });
  int failures = dom.run([](px::dist::locality& loc0) {
    auto f0 = loc0.call<&res_barrier_participant>(0, std::uint64_t{0});
    auto f1 = loc0.call<&res_barrier_participant>(1, std::uint64_t{0});
    int n = 0;
    for (auto* f : {&f0, &f1}) {
      try {
        (void)f->get();
      } catch (std::runtime_error const& e) {
        // The waiter's locality_down crossed an action response, so it
        // arrives re-wrapped; the cause must still be named.
        if (std::string(e.what()).find("locality_down") != std::string::npos)
          ++n;
      }
    }
    return n;
  });
  killer.join();
  EXPECT_EQ(failures, 2);
  dom.wait_all_quiescent();
}

// ---- heat solver kill + restore ------------------------------------------

px::dist::domain_config heat_kill_cfg() {
  px::dist::domain_config cfg;
  cfg.num_localities = 8;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 0.001;
  cfg.resilience.enabled = true;
  // Confirm sits far above worst-case heartbeat jitter (sanitizer builds
  // stretch delivery by several-fold): only the deliberately killed
  // locality may ever cross it, or the recovered field would be computed
  // against the wrong membership and the bitwise check below would lie.
  cfg.resilience.heartbeat_interval_us = 2'000.0;
  cfg.resilience.suspect_after_us = 100'000.0;
  cfg.resilience.confirm_after_us = 500'000.0;
  // Force the reliability layer on (no link faults are configured, so
  // `automatic` would leave it off): the recovery path then runs over
  // sequenced/acked links and the dedup-window invariant is live.
  cfg.reliability.activation = px::net::reliability_config::mode::on;
  return cfg;
}

px::stencil::dist_heat_config heat_kill_solver_cfg() {
  px::stencil::dist_heat_config hc;
  hc.steps = 60;
  hc.checkpoint_interval = 10;
  hc.max_recoveries = 8;
  return hc;
}

TEST(HeatKill, KillOneLocalityRunIsBitwiseIdenticalToFaultFree) {
  auto const initial = px::stencil::heat1d_sine_initial(401);
  auto const hc = heat_kill_solver_cfg();

  // Fault-free baseline on an identical topology.
  px::dist::domain_config clean = heat_kill_cfg();
  clean.resilience.enabled = false;
  px::dist::distributed_domain clean_dom(clean);
  auto const baseline = px::stencil::run_distributed_heat1d(clean_dom, initial, hc);
  clean_dom.wait_all_quiescent();

  auto const before_confirms = builtin().resilience_confirms.load();
  auto const before_restores = builtin().resilience_restores.load();
  auto const before_ckpt = builtin().resilience_checkpoint_bytes.load();

  px::dist::distributed_domain dom(heat_kill_cfg());
  dom.fabric().faults().fail_stop_at_step(3, 47);
  auto const result = px::stencil::run_distributed_heat1d(dom, initial, hc);
  dom.wait_all_quiescent();  // obligation balance must hold post-recovery

  EXPECT_TRUE(dom.is_confirmed_dead(3));
  EXPECT_GE(result.recoveries, 1u);
  EXPECT_GE(builtin().resilience_confirms.load() - before_confirms, 1u);
  // One restore per partition per rollback (step-0 rollbacks use the
  // driver's own copy of the initial condition, hence GE not EQ).
  EXPECT_GE(builtin().resilience_restores.load() - before_restores, 8u);
  EXPECT_GT(builtin().resilience_checkpoint_bytes.load() - before_ckpt, 0u);

  // Replay from a bitwise-faithful checkpoint is deterministic, so the
  // recovered run cannot be told apart from the fault-free one.
  ASSERT_EQ(result.values.size(), baseline.values.size());
  EXPECT_TRUE(result.values == baseline.values);
}

TEST(HeatKill, SixteenSeedTortureSweepStaysBitwiseIdentical) {
  namespace torture = px::torture;
  auto const initial = px::stencil::heat1d_sine_initial(97);
  auto const hc = heat_kill_solver_cfg();

  px::dist::domain_config clean = heat_kill_cfg();
  clean.resilience.enabled = false;
  px::dist::distributed_domain clean_dom(clean);
  auto const baseline = px::stencil::run_distributed_heat1d(clean_dom, initial, hc);
  clean_dom.wait_all_quiescent();

  torture::forall_options opts;
  opts.perturb.perturb_probability = 0.3;
  opts.perturb.max_sleep_us = 40;
  // Deadline jitter would stall whole heartbeat ticks, and a stalled tick
  // reads as cluster-wide silence; schedule exploration still bites via
  // the sleep/yield perturbations on the wire and confirm paths.
  opts.perturb.timer_jitter_ns = 0;
  opts.dump_stem = "torture-resilience";

  auto r = torture::forall_seeds(
      torture::seed_count(16),
      [&](std::uint64_t) {
        auto dom = std::make_unique<px::dist::distributed_domain>(
            heat_kill_cfg());
        dom->fabric().faults().fail_stop_at_step(3, 47);
        auto const out = px::stencil::run_distributed_heat1d(*dom, initial, hc);
        if (out.values.size() != baseline.values.size() ||
            !(out.values == baseline.values))
          throw std::runtime_error(
              "recovered heat1d diverged bitwise from the fault-free run");
        if (out.recoveries < 1)
          throw std::runtime_error("fail-stop at step 47 never recovered");
        if (!dom->wait_all_quiescent_for(60s)) {
          dom->detach_invariants();
          auto const leaked = dom->obligations_in_flight();
          (void)dom.release();  // corrupted: destructor would hang
          throw torture::invariant_violation(
              {{"obligation-balance",
                std::to_string(leaked) +
                    " obligation(s) in flight after kill+restore"}});
        }
      },
      opts);
  EXPECT_TRUE(r.passed) << "seed " << r.failing_seed << ": " << r.message;
}

// ---- checkpoint/restart cluster cost model -------------------------------

TEST(ResilienceModel, CleanRunAddsOnlyCheckpointOverhead) {
  px::arch::machine const m = px::arch::xeon_e5_2660v3();
  px::arch::cluster_sim_config cfg;
  cfg.nodes = 8;
  cfg.steps = 100;
  auto const clean =
      px::arch::simulate_heat1d_cluster(m, px::net::infiniband_edr(), cfg);

  px::arch::cluster_resilience_config rcfg;
  rcfg.checkpoint_interval = 10;
  rcfg.checkpoint_write_s = 1e-3;
  auto const r = px::arch::simulate_heat1d_cluster_resilient(
      m, px::net::infiniband_edr(), cfg, rcfg);

  EXPECT_EQ(r.replayed_steps, 0u);
  EXPECT_EQ(r.checkpoints_taken, 9u);  // steps 10..90
  EXPECT_NEAR(r.makespan_s, clean.makespan_s + 9e-3, 1e-9);
  EXPECT_EQ(r.messages, clean.messages);
  EXPECT_DOUBLE_EQ(r.lost_work_s, 0.0);
}

TEST(ResilienceModel, FailingRunReplaysFromNewestCoveredCheckpoint) {
  px::arch::machine const m = px::arch::xeon_e5_2660v3();
  px::arch::cluster_sim_config cfg;
  cfg.nodes = 8;
  cfg.steps = 100;
  auto const clean =
      px::arch::simulate_heat1d_cluster(m, px::net::infiniband_edr(), cfg);

  px::arch::cluster_resilience_config rcfg;
  rcfg.checkpoint_interval = 10;
  rcfg.fail_stop_step = 47;
  auto const r = px::arch::simulate_heat1d_cluster_resilient(
      m, px::net::infiniband_edr(), cfg, rcfg);

  EXPECT_EQ(r.replayed_steps, 7u);  // rollback to 40, failure at 47
  EXPECT_GT(r.makespan_s, clean.makespan_s);
  EXPECT_GT(r.lost_work_s, 0.0);
  EXPECT_GT(r.recovery_s, 0.0);
  EXPECT_GT(r.messages, clean.messages);  // the replayed window re-halos
}

TEST(ResilienceModel, NoCheckpointMeansReplayFromScratch) {
  px::arch::machine const m = px::arch::xeon_e5_2660v3();
  px::arch::cluster_sim_config cfg;
  cfg.nodes = 4;
  cfg.steps = 50;

  px::arch::cluster_resilience_config rcfg;
  rcfg.checkpoint_interval = 0;
  rcfg.fail_stop_step = 33;
  auto const r = px::arch::simulate_heat1d_cluster_resilient(
      m, px::net::infiniband_edr(), cfg, rcfg);
  EXPECT_EQ(r.replayed_steps, 33u);
  EXPECT_EQ(r.checkpoints_taken, 0u);
  EXPECT_DOUBLE_EQ(r.checkpoint_overhead_s, 0.0);
}

}  // namespace
