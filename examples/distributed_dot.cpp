// distributed_dot — partitioned vectors + collectives: two AGAS-backed
// vectors spread over a virtual cluster, a dot product computed block-
// locally on each locality, partials reduced at the caller. Demonstrates
// the data-in-AGAS programming style (hpx::partitioned_vector).
#include <cstdio>
#include <numeric>

#include "px/dist/collectives.hpp"
#include "px/dist/partitioned_vector.hpp"

namespace {

using pv = px::dist::partitioned_vector<double>;

// Block-local dot product: both vectors decompose identically, so block b
// of x pairs with block b of y on the same locality — no data motion.
double dot_block(px::dist::locality& here, px::agas::gid gx,
                 px::agas::gid gy) {
  auto bx = here.agas().resolve<px::dist::pv_block<double>>(gx);
  auto by = here.agas().resolve<px::dist::pv_block<double>>(gy);
  if (!bx || !by || bx->data.size() != by->data.size())
    throw std::runtime_error("dot_block: mismatched blocks");
  double s = 0.0;
  for (std::size_t i = 0; i < bx->data.size(); ++i)
    s += bx->data[i] * by->data[i];
  return s;
}

}  // namespace

PX_REGISTER_PARTITIONED_VECTOR(double)
PX_REGISTER_ACTION(dot_block)

int main() {
  px::dist::domain_config cfg;
  cfg.num_localities = 4;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 1.0;
  px::dist::distributed_domain dom(cfg);

  constexpr std::size_t n = 100'000;
  double const result = dom.run([&](px::dist::locality& loc0) {
    auto x = pv::create(loc0, n);
    auto y = pv::create(loc0, n);

    // x[i] = i/n, y[i] = 2 (scattered block-wise).
    std::vector<double> xv(n), yv(n, 2.0);
    for (std::size_t i = 0; i < n; ++i)
      xv[i] = static_cast<double>(i) / static_cast<double>(n);
    x.scatter(loc0, xv);
    y.scatter(loc0, yv);

    // One dot_block action per locality; partials fold at the caller.
    double dot = 0.0;
    std::vector<px::future<double>> partials;
    for (std::size_t b = 0; b < x.num_blocks(); ++b)
      partials.push_back(loc0.call<&dot_block>(
          x.block_gid(b).locality(), x.block_gid(b), y.block_gid(b)));
    for (auto& f : partials) dot += f.get();

    // Cross-check against a gather + local dot.
    auto gx = x.gather(loc0);
    auto gy = y.gather(loc0);
    double check = 0.0;
    for (std::size_t i = 0; i < n; ++i) check += gx[i] * gy[i];
    std::printf("distributed dot = %.6f, gathered check = %.6f\n", dot,
                check);

    x.destroy(loc0);
    y.destroy(loc0);
    return dot;
  });

  double const expect = 2.0 * (static_cast<double>(n - 1) / 2.0);
  std::printf("expected ~= %.6f; fabric moved %llu messages / %llu bytes\n",
              expect,
              static_cast<unsigned long long>(
                  dom.fabric().counters().messages.load()),
              static_cast<unsigned long long>(
                  dom.fabric().counters().bytes.load()));
  return std::abs(result - expect) < 1e-6 ? 0 : 1;
}
