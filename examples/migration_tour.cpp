// migration_tour — Active Global Address Space in action: a stateful
// component is created on locality 0, addressed by GID through symbolic
// names, invoked remotely via actions, and then migrated around the
// virtual cluster while staying reachable.
#include <cstdio>

#include "px/dist/distributed_domain.hpp"
#include "px/dist/migration.hpp"

namespace {

struct visit_log {
  std::vector<std::uint32_t> hosts;
  long total_work = 0;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar& hosts& total_work;
  }
};

// An action operating on a component by GID: finds it in the local AGAS,
// records the visit, does some "work".
long visit(px::dist::locality& here, px::agas::gid g, long amount) {
  auto obj = here.agas().resolve<visit_log>(g);
  if (obj == nullptr) throw std::runtime_error("component not resident");
  obj->hosts.push_back(here.id());
  obj->total_work += amount;
  return obj->total_work;
}

// Migration departs from the object's *current* host, so the hop itself is
// an action sent to wherever the component lives right now.
px::agas::gid hop_component(px::dist::locality& here, px::agas::gid g,
                            std::uint32_t dest) {
  return px::dist::migrate<visit_log>(here, g, dest).get();
}

}  // namespace

PX_REGISTER_ACTION(visit)
PX_REGISTER_ACTION(hop_component)
PX_REGISTER_MIGRATABLE(visit_log)

int main() {
  px::dist::domain_config cfg;
  cfg.num_localities = 4;
  cfg.locality_cfg.num_workers = 2;
  cfg.injection_scale = 1.0;
  px::dist::distributed_domain dom(cfg);

  dom.run([&](px::dist::locality& loc0) {
    // Create the component here and give it a global symbolic name.
    auto g = loc0.agas().bind(std::make_shared<visit_log>());
    loc0.agas().register_name("tour/log", g);
    std::printf("created component %s on locality 0\n",
                g.to_string().c_str());

    // Work on it locally, then send it on a tour of the cluster.
    loc0.call<&visit>(0, g, 10).get();
    for (std::uint32_t hop = 1; hop < dom.size(); ++hop) {
      g = loc0.call<&hop_component>(g.locality(), g, hop).get();
      std::printf("migrated -> locality %u (gid now %s)\n", g.locality(),
                  g.to_string().c_str());
      long total = loc0.call<&visit>(hop, g, 10 * (hop + 1)).get();
      std::printf("  remote visit on %u, accumulated work = %ld\n", hop,
                  total);
    }

    // Bring it home and inspect the itinerary.
    g = loc0.call<&hop_component>(g.locality(), g, 0).get();
    auto log = loc0.agas().resolve<visit_log>(g);
    std::printf("\nfinal state back on locality %u: work=%ld, route = ",
                g.locality(), log->total_work);
    for (auto h : log->hosts) std::printf("%u ", h);
    std::printf("\nfabric: %llu messages, %llu bytes, %.1f us modeled\n",
                static_cast<unsigned long long>(
                    dom.fabric().counters().messages.load()),
                static_cast<unsigned long long>(
                    dom.fabric().counters().bytes.load()),
                dom.fabric().counters().modeled_us());
    return 0;
  });
  return 0;
}
