// dataflow_pipeline — message-driven computation in the ParalleX style:
// a four-stage analysis pipeline over a stream of "sensor frames" where
// every stage is a task and stages are stitched together with channels and
// dataflow. Nothing blocks an OS thread; backpressure comes from a bounded
// channel.
//
//   generate -> denoise (SIMD) -> reduce -> report
#include <cmath>
#include <cstdio>
#include <numeric>

#include "px/px.hpp"
#include "px/simd/simd.hpp"

namespace {

constexpr std::size_t frame_len = 256;
constexpr int num_frames = 64;

struct frame {
  int id = 0;
  std::vector<double> samples;
};

struct summary {
  int id = 0;
  double mean = 0.0;
  double rms = 0.0;
};

}  // namespace

int main() {
  px::scheduler_config cfg;
  cfg.num_workers = 4;
  px::runtime rt(cfg);

  // Bounded channels give the pipeline backpressure: a slow stage stalls
  // (suspends) its producer instead of buffering unboundedly.
  px::bounded_channel<frame> raw(8);
  px::bounded_channel<frame> clean(8);
  px::channel<summary> results;

  // Stage 1: generator.
  rt.post([&raw] {
    px::xoshiro256ss rng(2026);
    for (int f = 0; f < num_frames; ++f) {
      frame fr;
      fr.id = f;
      fr.samples.resize(frame_len);
      for (auto& s : fr.samples)
        s = std::sin(0.05 * f) + 0.1 * (rng.uniform() - 0.5);
      raw.send(std::move(fr));
    }
  });

  // Stage 2: SIMD denoise (three-tap moving average with pack kernels).
  rt.post([&raw, &clean] {
    using pk = px::simd::pack<double, 4>;
    for (int f = 0; f < num_frames; ++f) {
      frame fr = raw.get();
      std::vector<double> out(fr.samples.size());
      out.front() = fr.samples.front();
      out.back() = fr.samples.back();
      std::size_t x = 1;
      for (; x + pk::width < fr.samples.size() - 1; x += pk::width) {
        pk left = px::simd::load_unaligned<pk>(&fr.samples[x - 1]);
        pk mid = px::simd::load_unaligned<pk>(&fr.samples[x]);
        pk right = px::simd::load_unaligned<pk>(&fr.samples[x + 1]);
        px::simd::store_unaligned(&out[x],
                                  (left + mid + right) * pk(1.0 / 3.0));
      }
      for (; x + 1 < fr.samples.size(); ++x)
        out[x] = (fr.samples[x - 1] + fr.samples[x] + fr.samples[x + 1]) / 3.0;
      fr.samples = std::move(out);
      clean.send(std::move(fr));
    }
  });

  // Stage 3: per-frame reduction, fanned out as one task per frame via
  // dataflow on the receive future.
  rt.post([&clean, &results] {
    for (int f = 0; f < num_frames; ++f) {
      auto fut = clean.receive();
      px::dataflow(
          [&results](px::future<frame> ff) {
            frame fr = ff.get();
            summary s;
            s.id = fr.id;
            s.mean = std::accumulate(fr.samples.begin(), fr.samples.end(),
                                     0.0) /
                     static_cast<double>(fr.samples.size());
            double sq = 0;
            for (double v : fr.samples) sq += v * v;
            s.rms = std::sqrt(sq / static_cast<double>(fr.samples.size()));
            results.send(s);
            return 0;
          },
          std::move(fut));
    }
  });

  // Stage 4: report (drives the pipeline from the outside).
  double mean_of_means = 0;
  int received = 0;
  for (int f = 0; f < num_frames; ++f) {
    summary s = results.get();
    mean_of_means += s.mean;
    ++received;
    if (s.id % 16 == 0)
      std::printf("frame %2d: mean % .4f rms %.4f\n", s.id, s.mean, s.rms);
  }
  rt.wait_quiescent();
  std::printf("\npipeline done: %d frames, grand mean % .5f\n", received,
              mean_of_means / num_frames);
  return 0;
}
