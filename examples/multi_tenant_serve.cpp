// multi_tenant_serve — px::serve walkthrough.
//
// Three tenants share one runtime under the weighted-fair scheduling
// policy: a heavy "analytics" tenant (weight 4) running 2D Jacobi sweeps,
// a light "batch" tenant (weight 1) running futurized 1D heat solves, and
// an "interactive" tenant with a small admission cap taking an open-loop
// storm of short spin requests. The storm overruns the interactive
// tenant's in-flight cap, so admission control sheds the excess instead
// of letting its queueing delay grow without bound — while the weighted
// tenants keep their proportional share of the workers.
//
//   $ cmake --build build --target multi_tenant_serve
//   $ ./build/examples/multi_tenant_serve
//
// Try PX_SCHED_POLICY=priority (tenant priorities then rule instead of
// weights) or =ws (lanes become accounting-only; no isolation).
#include <cstdio>

#include "px/px.hpp"
#include "px/serve/serve.hpp"

int main() {
  px::scheduler_config cfg = px::scheduler_config::from_env();
  cfg.num_workers = 4;
  if (cfg.policy_name == "ws") cfg.policy_name = "wfq";  // env wins if set
  px::runtime rt(cfg);
  px::serve::server sv(rt);

  px::serve::tenant_config analytics;
  analytics.name = "analytics";
  analytics.weight = 4.0;
  auto const a = sv.add_tenant(analytics);

  px::serve::tenant_config batch;
  batch.name = "batch";
  batch.weight = 1.0;
  auto const b = sv.add_tenant(batch);

  px::serve::tenant_config interactive;
  interactive.name = "interactive";
  interactive.weight = 2.0;
  interactive.max_in_flight = 8;  // shed rather than queue a storm
  auto const i = sv.add_tenant(interactive);

  // Steady background work for the weighted tenants.
  px::serve::job_request jacobi;
  jacobi.kind = px::serve::job_kind::jacobi2d;
  jacobi.size = 48;
  jacobi.steps = 10;
  px::serve::job_request heat;
  heat.kind = px::serve::job_kind::dataflow;
  heat.size = 512;
  heat.steps = 20;
  for (int n = 0; n < 24; ++n) {
    sv.submit(a, jacobi);
    sv.submit(b, heat);
  }

  // An open-loop burst far past the interactive tenant's cap.
  px::serve::open_loop_config storm;
  storm.rate_hz = 20'000.0;
  storm.jobs = 400;
  storm.request.kind = px::serve::job_kind::spin;
  storm.request.size = 50'000;
  auto const gen = run_open_loop(sv, i, storm);
  sv.drain();

  for (auto id : {a, b, i}) {
    auto const s = sv.stats(id);
    std::printf(
        "%-12s submitted=%-4llu accepted=%-4llu rejected=%-4llu "
        "p50=%8.1f us  p99=%8.1f us\n",
        sv.tenant_instance(id).c_str(),
        static_cast<unsigned long long>(s.submitted),
        static_cast<unsigned long long>(s.accepted),
        static_cast<unsigned long long>(s.rejected),
        static_cast<double>(s.p50_ns) / 1e3,
        static_cast<double>(s.p99_ns) / 1e3);
  }
  std::printf("storm: %llu accepted, %llu shed by admission control\n",
              static_cast<unsigned long long>(gen.accepted),
              static_cast<unsigned long long>(gen.rejected));

  // Every tenant's live telemetry is also in the counter registry:
  std::uint64_t p99 = 0;
  px::counters::registry::instance().value_of(
      "/px/tenant/" + sv.tenant_instance(i) + "/p99_ns", p99);
  std::printf("registry /px/tenant/interactive/p99_ns = %llu\n",
              static_cast<unsigned long long>(p99));
  return 0;
}
