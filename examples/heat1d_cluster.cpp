// heat1d_cluster — the paper's distributed 1D heat benchmark (§V-A) on a
// virtual cluster: four in-process localities wired through a modeled
// InfiniBand fabric. Demonstrates halo exchange via parcels with latency
// hiding, validates against the serial reference, and contrasts a capable
// NIC with the Kunpeng 916's starved one.
//
// Environment knobs:
//   PX_NODES   (default 4)    virtual localities
//   PX_POINTS  (default 1e6)  global stencil points
//   PX_STEPS   (default 50)   time steps
#include <cstdio>

#include "px/stencil/stencil.hpp"
#include "px/support/env.hpp"

namespace {

px::stencil::dist_heat_result solve_on(px::net::fabric_model fabric,
                                       std::size_t nodes, std::size_t points,
                                       std::size_t steps) {
  px::dist::domain_config cfg;
  cfg.num_localities = nodes;
  cfg.locality_cfg.num_workers = 2;
  cfg.fabric = fabric;
  cfg.injection_scale = 1.0;  // real sleeps for modeled wire time
  px::dist::distributed_domain dom(cfg);

  auto initial = px::stencil::heat1d_sine_initial(points);
  px::stencil::dist_heat_config hc;
  hc.steps = steps;
  auto result = px::stencil::run_distributed_heat1d(dom, initial, hc);

  auto ref = px::stencil::reference_heat1d(initial, steps, hc.k);
  double const err = px::stencil::max_abs_diff(result.values, ref);
  std::printf(
      "  %-28s %6.3f s   %8.1f Mpts/s   halo msgs %6llu   max err %.2e\n",
      fabric.name.c_str(), result.seconds,
      result.points_per_second / 1e6,
      static_cast<unsigned long long>(result.halo_messages), err);
  return result;
}

}  // namespace

int main() {
  std::size_t const nodes = px::env_size("PX_NODES").value_or(4);
  std::size_t const points =
      px::env_size("PX_POINTS").value_or(1'000'000);
  std::size_t const steps = px::env_size("PX_STEPS").value_or(50);

  std::printf("distributed 1D heat: %zu virtual nodes, %zu points, %zu "
              "steps\n\n",
              nodes, points, steps);

  std::printf("fabric model                  time        throughput       "
              "traffic          accuracy\n");
  solve_on(px::net::infiniband_edr(), nodes, points, steps);
  solve_on(px::net::tofu_d(), nodes, points, steps);
  solve_on(px::net::hi1616_nic(), nodes, points, steps);

  std::printf("\nNote: halo latency hides under the interior update (the "
              "paper's flat weak scaling); the Hi1616 model pays visibly "
              "more wire time.\n");
  return 0;
}
