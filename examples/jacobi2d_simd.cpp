// jacobi2d_simd — the paper's 2D benchmark (§V-B) on the build host:
// one generic kernel instantiated for compiler-auto-vectorized scalars and
// for explicit px::simd packs in the Virtual Node Scheme layout. Prints
// MLUP/s for all four data-type variants (the Fig 4-8 series) and checks
// the SIMD paths against the scalar one.
//
// Environment knobs: PX_NX (row length), PX_NY (rows), PX_STEPS.
#include <cstdio>

#include "px/px.hpp"
#include "px/simd/simd.hpp"
#include "px/stencil/stencil.hpp"
#include "px/support/env.hpp"

namespace {

template <typename Cell>
double run_variant(px::runtime& rt, char const* label, std::size_t nx,
                   std::size_t ny, std::size_t steps,
                   std::vector<double>* reference_out) {
  using namespace px::stencil;
  field2d<Cell> u0(nx, ny), u1(nx, ny);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);

  auto result = px::sync_wait(rt, [&] {
    return run_jacobi2d(px::execution::par, u0, u1, steps);
  });
  auto const& fin = result.final_index == 0 ? u0 : u1;

  double err = 0.0;
  if (reference_out != nullptr) {
    if (reference_out->empty()) {
      reference_out->resize(nx * ny);
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x)
          (*reference_out)[y * nx + x] = static_cast<double>(fin.get(x, y));
    } else {
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x)
          err = std::max(err,
                         std::abs(static_cast<double>(fin.get(x, y)) -
                                  (*reference_out)[y * nx + x]));
    }
  }
  std::printf("  %-16s %8.1f MLUP/s   %.3f s   vs scalar-double %.2e\n",
              label, result.glups * 1e3, result.seconds, err);
  return result.glups;
}

}  // namespace

int main() {
  std::size_t const nx = px::env_size("PX_NX").value_or(1024);
  std::size_t const ny = px::env_size("PX_NY").value_or(512);
  std::size_t const steps = px::env_size("PX_STEPS").value_or(50);

  px::runtime rt{px::scheduler_config{}};
  std::printf("2D Jacobi, %zux%zu grid, %zu steps, %zu workers\n\n", nx, ny,
              steps, rt.num_workers());

  using px::simd::abi::native;
  std::printf("variant              throughput     time      accuracy\n");
  std::vector<double> ref;  // filled by the first (scalar double) run
  double const d_auto =
      run_variant<double>(rt, "double (auto)", nx, ny, steps, &ref);
  double const d_pack = run_variant<native<double>>(
      rt, "double (pack)", nx, ny, steps, &ref);
  double const f_auto =
      run_variant<float>(rt, "float (auto)", nx, ny, steps, nullptr);
  double const f_pack = run_variant<native<float>>(rt, "float (pack)", nx,
                                                   ny, steps, nullptr);

  std::printf("\nexplicit-vectorization speedup: float %.2fx, double "
              "%.2fx  (pack width: %zu floats / %zu doubles)\n",
              f_pack / f_auto, d_pack / d_auto, native<float>::width,
              native<double>::width);
  return 0;
}
