// trace_profile — observability tour: runs the 2D Jacobi benchmark with
// task tracing enabled and writes a chrome://tracing / Perfetto JSON
// timeline (/tmp/px_jacobi_trace.json), then prints the scheduler's own
// statistics including per-worker utilization.
#include <cstdio>

#include "px/px.hpp"
#include "px/stencil/stencil.hpp"
#include "px/support/env.hpp"

int main() {
  px::scheduler_config cfg;
  cfg.num_workers = px::env_size("PX_WORKERS").value_or(2);
  px::runtime rt(cfg);

  using namespace px::stencil;
  std::size_t const nx = px::env_size("PX_NX").value_or(512);
  std::size_t const ny = px::env_size("PX_NY").value_or(256);
  std::size_t const steps = px::env_size("PX_STEPS").value_or(25);

  field2d<float> u0(nx, ny), u1(nx, ny);
  init_dirichlet_problem(u0);
  init_dirichlet_problem(u1);

  px::trace::enable();
  px::high_resolution_timer wall;
  auto result = px::sync_wait(rt, [&] {
    return run_jacobi2d(px::execution::par.with(8), u0, u1, steps);
  });
  double const elapsed = wall.elapsed();
  px::trace::disable();

  std::string const path = "/tmp/px_jacobi_trace.json";
  bool const wrote = px::trace::write_json_file(path);
  auto const stats = rt.stats();

  std::printf("2D Jacobi %zux%zu, %zu steps: %.1f MLUP/s\n", nx, ny, steps,
              result.glups * 1e3);
  std::printf("trace: %zu task slices%s%s\n", px::trace::event_count(),
              wrote ? " written to " : " (write failed: ",
              wrote ? path.c_str() : path.c_str());
  std::printf("scheduler: %llu tasks executed, %llu steals, %llu yields, "
              "%llu parks\n",
              static_cast<unsigned long long>(stats.tasks_executed),
              static_cast<unsigned long long>(stats.steals),
              static_cast<unsigned long long>(stats.yields),
              static_cast<unsigned long long>(stats.parks));
  double const busy_s = static_cast<double>(stats.busy_ns) / 1e9;
  std::printf("utilization: %.3f s busy across %zu workers over %.3f s "
              "wall = %.0f%%\n",
              busy_s, rt.num_workers(), elapsed,
              100.0 * busy_s /
                  (elapsed * static_cast<double>(rt.num_workers())));
  // Dump the full performance-counter registry next to the trace: every
  // /px/... path the runtime registered (scheduler, per-worker, stacks,
  // parcel, timer, net, trace), one JSON snapshot.
  std::string const counters_path = "/tmp/px_counters.json";
  bool const counters_wrote = px::counters::write_json_file(counters_path);
  auto const snap = px::counters::registry::instance().take_snapshot();
  std::printf("counters: %zu paths%s%s\n", snap.samples.size(),
              counters_wrote ? " written to " : " (write failed: ",
              counters_wrote ? counters_path.c_str() : counters_path.c_str());
  std::uint64_t spawned = 0;
  px::counters::registry::instance().value_of(
      "/px/scheduler{" + rt.counter_instance() + "}/tasks_spawned", spawned);
  std::printf("counters: /px/scheduler{%s}/tasks_spawned = %llu\n",
              rt.counter_instance().c_str(),
              static_cast<unsigned long long>(spawned));
  std::printf("\nOpen the JSON in https://ui.perfetto.dev to see the "
              "per-worker task timeline.\n");
  return 0;
}
