// quickstart — a tour of the px runtime in ~80 lines:
//   * start a runtime (one locality, N workers)
//   * async/future, dataflow composition
//   * lightweight-task suspension (sleep without blocking a worker)
//   * channels
//   * parallel algorithms with execution policies
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "px/px.hpp"

int main() {
  px::scheduler_config cfg;
  cfg.num_workers = 4;  // worker OS threads; tasks are much lighter
  px::runtime rt(cfg);

  // -- 1. futures ---------------------------------------------------------
  auto answer = px::async_on(rt, [] { return 6 * 7; });
  std::printf("async answer       : %d\n", answer.get());

  // -- 2. dataflow: runs when both inputs are ready -----------------------
  int combined = px::sync_wait(rt, [] {
    auto a = px::async([] { return 40; });
    auto b = px::async([] {
      px::this_task::sleep_for(std::chrono::milliseconds(10));
      return 2;
    });
    return px::dataflow(
               [](px::future<int> x, px::future<int> y) {
                 return x.get() + y.get();
               },
               std::move(a), std::move(b))
        .get();
  });
  std::printf("dataflow combined  : %d\n", combined);

  // -- 3. channels: CSP-style message passing between tasks ---------------
  int relayed = px::sync_wait(rt, [] {
    px::channel<int> ch;
    px::post([&ch] { ch.send(123); });
    return ch.get();  // suspends this task until the value arrives
  });
  std::printf("channel relayed    : %d\n", relayed);

  // -- 4. parallel algorithms ---------------------------------------------
  std::vector<double> v(1'000'000);
  std::iota(v.begin(), v.end(), 0.0);
  double sum = px::sync_wait(rt, [&v] {
    px::parallel::for_each(px::execution::par, v.begin(), v.end(),
                           [](double& x) { x = x * 2.0; });
    return px::parallel::reduce(px::execution::par, v.begin(), v.end(), 0.0,
                                std::plus<>{});
  });
  std::printf("parallel sum       : %.0f (expect %.0f)\n", sum,
              999999.0 * 1000000.0);

  // -- 5. many tiny tasks: the AMT value proposition ----------------------
  std::atomic<long> count{0};
  px::high_resolution_timer timer;
  for (int i = 0; i < 50'000; ++i) rt.post([&count] { count.fetch_add(1); });
  rt.wait_quiescent();
  std::printf("50k tasks          : %ld done in %.3f s (%.1f Mtasks/s)\n",
              count.load(), timer.elapsed(),
              50'000.0 / timer.elapsed() / 1e6);
  return 0;
}
